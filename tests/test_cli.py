"""Tests for the CLI (direct main() calls, no subprocess)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_client_upload_accepts_workers(self):
        args = build_parser().parse_args(
            ["client-upload", "--authority-port", "1", "--server-port", "2",
             "--workers", "3"])
        assert args.workers == 3

    def test_client_upload_workers_default_serial(self):
        args = build_parser().parse_args(
            ["client-upload", "--authority-port", "1", "--server-port", "2"])
        assert args.workers is None

    def test_client_upload_rejects_nonpositive_workers(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["client-upload", "--authority-port", "1",
                  "--server-port", "2", "--workers", "0"])


class TestInfoAndDemo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "CryptoNN" in out
        assert "256" in out

    def test_demo_trains(self, capsys):
        assert main(["demo", "--samples", "40"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out


class TestFileWorkflow:
    def test_full_roundtrip(self, tmp_path, capsys):
        authority_path = str(tmp_path / "authority.json")
        data_path = str(tmp_path / "data.json")
        model_path = str(tmp_path / "model.npz")

        assert main(["keygen", "--out", authority_path, "--bits", "32",
                     "--features", "4", "--classes", "2"]) == 0
        assert main(["encrypt", "--authority", authority_path,
                     "--out", data_path, "--clinics", "1",
                     "--samples", "30", "--features", "4"]) == 0
        assert main(["train", "--authority", authority_path,
                     "--data", data_path, "--model-out", model_path,
                     "--hidden", "6", "--epochs", "2",
                     "--batch-size", "15"]) == 0
        assert main(["evaluate", "--authority", authority_path,
                     "--data", data_path, "--model", model_path,
                     "--hidden", "6"]) == 0
        out = capsys.readouterr().out
        assert "accuracy over encrypted data" in out

    def test_keygen_warns_about_secrets(self, tmp_path, capsys):
        main(["keygen", "--out", str(tmp_path / "a.json"), "--bits", "32"])
        assert "master secret" in capsys.readouterr().out

    def test_train_on_missing_file_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["train", "--authority", str(tmp_path / "nope.json"),
                  "--data", str(tmp_path / "nope2.json")])


class TestAuthorityRoundtrip:
    def test_keys_survive_reload(self, tmp_path):
        """Ciphertexts made before save must decrypt after load."""
        import random
        from repro.core.checkpoint import load_authority, save_authority
        from repro.core.config import CryptoNNConfig
        from repro.core.entities import TrustedAuthority

        authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
        mpk = authority.feip_public_key(3)
        ct = authority.feip.encrypt(mpk, [1, 2, 3])
        path = tmp_path / "authority.json"
        save_authority(authority, path)

        restored = load_authority(path, rng=random.Random(1))
        key = restored.derive_feip_keys([[4, 5, 6]])[0]
        assert restored.feip.decrypt(restored.feip_public_key(3), ct, key,
                                     bound=1000) == 32

    def test_bad_format_rejected(self, tmp_path):
        from repro.core.checkpoint import load_authority
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(ValueError):
            load_authority(path)


class TestMetricsWatch:
    """`repro metrics --watch` must survive a scrape target that is
    down or restarting instead of dying on the first refused
    connection (the supervised deployment restarts services under
    the watcher's feet)."""

    @pytest.mark.timeout_guard(60)
    def test_watch_retries_through_connection_refused(self, capsys):
        from repro.rpc import free_port

        port = free_port()  # nothing listens here
        rc = main(["metrics", "--port", str(port), "--watch", "0.05",
                   "--watch-count", "2", "--timeout", "0.5"])
        err = capsys.readouterr().err
        assert rc == 1  # bounded watch ends still-failing -> nonzero
        assert err.count("metrics scrape failed") == 2
        assert "retrying in" in err

    @pytest.mark.timeout_guard(60)
    def test_one_shot_scrape_failure_is_terminal(self, capsys):
        from repro.rpc import free_port

        port = free_port()
        rc = main(["metrics", "--port", str(port), "--timeout", "0.5"])
        assert rc == 1
        assert "metrics scrape failed" in capsys.readouterr().err

    @pytest.mark.timeout_guard(60)
    def test_watch_recovers_when_the_target_comes_back(self, capsys):
        import random
        import threading
        import time as _time

        from repro.core.config import CryptoNNConfig
        from repro.core.entities import TrustedAuthority
        from repro.rpc import AuthorityService, ServiceThread, free_port

        port = free_port()
        started = {}

        def bring_up_late():
            _time.sleep(1.0)
            authority = TrustedAuthority(CryptoNNConfig(),
                                         rng=random.Random(0))
            thread = ServiceThread(AuthorityService(authority, port=port))
            started["thread"] = thread
            started["addr"] = thread.start()

        helper = threading.Thread(target=bring_up_late, daemon=True)
        helper.start()
        try:
            # a couple of refused scrapes, then the service appears and
            # the same watch loop scrapes it successfully -> exit 0
            rc = main(["metrics", "--port", str(port), "--watch", "0.05",
                       "--watch-count", "8", "--timeout", "0.2"])
            captured = capsys.readouterr()
            assert rc == 0
            assert "metrics scrape failed" in captured.err
            assert "state=" in captured.out
        finally:
            helper.join(timeout=15)
            if "thread" in started:
                started["thread"].stop()
