"""Unit tests for repro.mathutils.modarith."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.mathutils.modarith import (
    extended_gcd,
    int_to_signed,
    mod_inverse,
    mod_sub,
    signed_to_int,
)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=10**9),
       st.integers(min_value=0, max_value=10**9))
def test_extended_gcd_bezout(a, b):
    g, x, y = extended_gcd(a, b)
    assert g == math.gcd(a, b)
    assert a * x + b * y == g


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=10**9),
       st.integers(min_value=2, max_value=10**9))
def test_mod_inverse_property(a, m):
    if math.gcd(a, m) == 1:
        inv = mod_inverse(a, m)
        assert 0 <= inv < m
        assert a * inv % m == 1
    else:
        with pytest.raises(ValueError):
            mod_inverse(a, m)


def test_mod_inverse_of_negative():
    assert (-3) * mod_inverse(-3, 7) % 7 == 1


def test_mod_sub_non_negative():
    assert mod_sub(3, 10, 7) == 0
    assert mod_sub(2, 5, 11) == 8


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=-10**6, max_value=10**6))
def test_signed_roundtrip(value):
    modulus = 2 * 10**6 + 7
    assert int_to_signed(signed_to_int(value, modulus), modulus) == value


def test_signed_window_edges():
    m = 11
    assert int_to_signed(5, m) == 5      # m//2 stays positive
    assert int_to_signed(6, m) == -5
    assert int_to_signed(10, m) == -1
    assert signed_to_int(-1, m) == 10
