"""Tests for Conv2D and the im2col/col2im machinery."""

import numpy as np
import pytest

from repro.nn.conv import Conv2D, col2im, conv_out_dims, im2col
from repro.nn.gradcheck import check_layer_input_grad, check_layer_param_grads

TOL = 1e-6


class TestIm2Col:
    def test_shapes(self, np_rng):
        x = np_rng.normal(size=(2, 3, 6, 6))
        cols, (oh, ow) = im2col(x, 3, 1, 0)
        assert (oh, ow) == (4, 4)
        assert cols.shape == (2 * 16, 3 * 9)

    def test_identity_filter_recovers_pixels(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        cols, _ = im2col(x, 1, 1, 0)
        np.testing.assert_array_equal(cols.ravel(), np.arange(16))

    def test_matches_secure_window_ordering(self, np_rng):
        """The plaintext im2col and the secure extract_windows must agree
        on flattening order -- CryptoCNN depends on it."""
        from repro.matrix.secure_conv import extract_windows
        img = np.arange(2 * 4 * 4, dtype=np.float64).reshape(2, 4, 4)
        windows, _ = extract_windows(img.astype(object), 3, 1, 1)
        cols, _ = im2col(img[np.newaxis], 3, 1, 1)
        np.testing.assert_array_equal(
            np.array(windows, dtype=np.float64), cols
        )

    def test_col2im_inverts_counts(self):
        """col2im of ones counts how many windows cover each pixel."""
        x_shape = (1, 1, 4, 4)
        cols, (oh, ow) = im2col(np.zeros(x_shape), 2, 2, 0)
        counts = col2im(np.ones_like(cols), x_shape, 2, 2, 0)
        np.testing.assert_array_equal(counts[0, 0], np.ones((4, 4)))


class TestConv2D:
    def test_forward_matches_direct_convolution(self, np_rng):
        layer = Conv2D(1, 1, filter_size=2, stride=1, padding=0, rng=np_rng)
        x = np_rng.normal(size=(1, 1, 3, 3))
        out = layer.forward(x)
        w = layer.params["W"][0, 0]
        expected = np.empty((2, 2))
        for i in range(2):
            for j in range(2):
                expected[i, j] = (x[0, 0, i:i + 2, j:j + 2] * w).sum()
        np.testing.assert_allclose(out[0, 0], expected + layer.params["b"][0])

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (1, 2)])
    def test_output_geometry(self, np_rng, stride, padding):
        layer = Conv2D(2, 4, filter_size=3, stride=stride, padding=padding,
                       rng=np_rng)
        x = np_rng.normal(size=(3, 2, 7, 7))
        oh, ow = conv_out_dims(7, 7, 3, stride, padding)
        assert layer.forward(x).shape == (3, 4, oh, ow)

    def test_input_gradient(self, np_rng):
        layer = Conv2D(2, 3, filter_size=3, stride=2, padding=1, rng=np_rng)
        assert check_layer_input_grad(layer, np_rng.normal(size=(2, 2, 5, 5))) < TOL

    def test_param_gradients(self, np_rng):
        layer = Conv2D(1, 2, filter_size=2, stride=1, padding=0, rng=np_rng)
        errors = check_layer_param_grads(layer, np_rng.normal(size=(2, 1, 4, 4)))
        assert max(errors.values()) < TOL

    def test_rejects_wrong_channels(self, np_rng):
        layer = Conv2D(3, 2, filter_size=3, rng=np_rng)
        with pytest.raises(ValueError):
            layer.forward(np_rng.normal(size=(1, 2, 5, 5)))

    def test_backward_before_forward_raises(self, np_rng):
        layer = Conv2D(1, 1, filter_size=2, rng=np_rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 1, 2, 2)))

    def test_filter_too_large_raises(self, np_rng):
        layer = Conv2D(1, 1, filter_size=9, rng=np_rng)
        with pytest.raises(ValueError):
            layer.forward(np_rng.normal(size=(1, 1, 4, 4)))
