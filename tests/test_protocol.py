"""Tests for the traffic log."""

import pytest

from repro.core import protocol
from repro.core.protocol import TrafficLog, TrafficRecord


class TestTrafficLog:
    def test_record_and_total(self):
        log = TrafficLog()
        log.record("server", "authority", "feip-key-request", 100)
        log.record("authority", "server", "feip-key-response", 60)
        assert log.total_bytes() == 160
        assert log.total_bytes(sender="server") == 100
        assert log.total_bytes(receiver="server") == 60
        assert log.total_bytes(kind="feip-key-request") == 100

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            TrafficLog().record("a", "b", "kind", -1)

    def test_message_count(self):
        log = TrafficLog()
        for _ in range(3):
            log.record("c", "s", protocol.KIND_ENCRYPTED_DATA, 10)
        log.record("s", "a", protocol.KIND_FEIP_KEY_REQUEST, 5)
        assert log.message_count() == 4
        assert log.message_count(protocol.KIND_ENCRYPTED_DATA) == 3

    def test_by_kind(self):
        log = TrafficLog()
        log.record("a", "b", "x", 1)
        log.record("a", "b", "x", 2)
        log.record("a", "b", "y", 5)
        assert log.by_kind() == {"x": 3, "y": 5}

    def test_clear(self):
        log = TrafficLog()
        log.record("a", "b", "x", 1)
        log.clear()
        assert log.total_bytes() == 0

    def test_records_are_immutable(self):
        record = TrafficRecord("a", "b", "x", 1)
        with pytest.raises(AttributeError):
            record.n_bytes = 2


class TestBoundedTrafficLog:
    """Rotation past ``max_records``: memory bounded, aggregates exact."""

    def test_record_list_stays_bounded(self):
        log = TrafficLog(max_records=10)
        for i in range(1000):
            log.record("c", "s", "x", i)
        assert len(log.records) <= 10

    def test_aggregates_survive_rotation_exactly(self):
        bounded = TrafficLog(max_records=8)
        unbounded = TrafficLog()
        for i in range(200):
            sender = f"client-{i % 3}"
            kind = "x" if i % 2 else "y"
            for log in (bounded, unbounded):
                log.record(sender, "server", kind, i)
        assert bounded.total_bytes() == unbounded.total_bytes()
        assert bounded.message_count() == unbounded.message_count()
        assert bounded.by_kind() == unbounded.by_kind()
        for s in ("client-0", "client-1", "client-2"):
            assert bounded.total_bytes(sender=s) == \
                unbounded.total_bytes(sender=s)
        for k in ("x", "y"):
            assert bounded.total_bytes(kind=k) == unbounded.total_bytes(kind=k)
            assert bounded.message_count(k) == unbounded.message_count(k)
        assert bounded.total_bytes(sender="client-1", receiver="server",
                                   kind="x") == \
            unbounded.total_bytes(sender="client-1", receiver="server",
                                  kind="x")

    def test_recent_records_remain_inspectable(self):
        log = TrafficLog(max_records=4)
        for i in range(10):
            log.record("c", "s", "x", i)
        # the newest records are still individually visible
        assert log.records[-1].n_bytes == 9

    def test_clear_resets_rotated_totals(self):
        log = TrafficLog(max_records=2)
        for i in range(10):
            log.record("c", "s", "x", 1)
        log.clear()
        assert log.total_bytes() == 0
        assert log.message_count() == 0

    def test_unbounded_default_never_rotates(self):
        log = TrafficLog()
        for i in range(5000):
            log.record("c", "s", "x", 1)
        assert len(log.records) == 5000
        assert not log.rotated

    def test_framed_service_logs_are_bounded(self):
        from repro.rpc.service import FramedService

        assert FramedService.MAX_RECORDS_PER_LOG is not None

    def test_authority_service_bounds_entity_log(self):
        import random

        from repro.core.config import CryptoNNConfig
        from repro.core.entities import TrustedAuthority
        from repro.rpc.authority_service import AuthorityService

        authority = TrustedAuthority(CryptoNNConfig(security_bits=32),
                                     rng=random.Random(0))
        assert authority.traffic.max_records is None
        service = AuthorityService(authority)
        assert authority.traffic.max_records == service.MAX_RECORDS_PER_LOG
