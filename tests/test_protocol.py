"""Tests for the traffic log."""

import pytest

from repro.core import protocol
from repro.core.protocol import TrafficLog, TrafficRecord


class TestTrafficLog:
    def test_record_and_total(self):
        log = TrafficLog()
        log.record("server", "authority", "feip-key-request", 100)
        log.record("authority", "server", "feip-key-response", 60)
        assert log.total_bytes() == 160
        assert log.total_bytes(sender="server") == 100
        assert log.total_bytes(receiver="server") == 60
        assert log.total_bytes(kind="feip-key-request") == 100

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            TrafficLog().record("a", "b", "kind", -1)

    def test_message_count(self):
        log = TrafficLog()
        for _ in range(3):
            log.record("c", "s", protocol.KIND_ENCRYPTED_DATA, 10)
        log.record("s", "a", protocol.KIND_FEIP_KEY_REQUEST, 5)
        assert log.message_count() == 4
        assert log.message_count(protocol.KIND_ENCRYPTED_DATA) == 3

    def test_by_kind(self):
        log = TrafficLog()
        log.record("a", "b", "x", 1)
        log.record("a", "b", "x", 2)
        log.record("a", "b", "y", 5)
        assert log.by_kind() == {"x": 3, "y": 5}

    def test_clear(self):
        log = TrafficLog()
        log.record("a", "b", "x", 1)
        log.clear()
        assert log.total_bytes() == 0

    def test_records_are_immutable(self):
        record = TrafficRecord("a", "b", "x", 1)
        with pytest.raises(AttributeError):
            record.n_bytes = 2
