"""Tests for Dense, Flatten and activation layers."""

import numpy as np
import pytest

from repro.nn.activations import relu, sigmoid, softmax, tanh, log_softmax
from repro.nn.gradcheck import check_layer_input_grad, check_layer_param_grads
from repro.nn.layers import Dense, Flatten, ReLU, Sigmoid, Tanh

TOL = 1e-7


class TestActivationFunctions:
    def test_sigmoid_range_and_midpoint(self):
        z = np.linspace(-10, 10, 101)
        out = sigmoid(z)
        assert (out > 0).all() and (out < 1).all()
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sigmoid_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.isfinite(out).all()

    def test_relu(self):
        np.testing.assert_array_equal(
            relu(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0]
        )

    def test_tanh_is_odd(self):
        z = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(tanh(-z), -tanh(z))

    def test_softmax_rows_sum_to_one(self):
        z = np.random.default_rng(0).normal(size=(4, 5))
        p = softmax(z, axis=1)
        np.testing.assert_allclose(p.sum(axis=1), np.ones(4))
        assert (p > 0).all()

    def test_softmax_shift_invariance(self):
        z = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(z), softmax(z + 100))

    def test_softmax_large_logits_stable(self):
        p = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        z = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(log_softmax(z), np.log(softmax(z)))


class TestDense:
    def test_forward_shape_and_value(self, np_rng):
        layer = Dense(3, 2, rng=np_rng)
        x = np_rng.normal(size=(5, 3))
        out = layer.forward(x)
        assert out.shape == (5, 2)
        np.testing.assert_allclose(
            out, x @ layer.params["W"] + layer.params["b"]
        )

    def test_rejects_wrong_input_shape(self, np_rng):
        layer = Dense(3, 2, rng=np_rng)
        with pytest.raises(ValueError):
            layer.forward(np_rng.normal(size=(5, 4)))

    def test_input_gradient(self, np_rng):
        layer = Dense(4, 3, rng=np_rng)
        assert check_layer_input_grad(layer, np_rng.normal(size=(6, 4))) < TOL

    def test_param_gradients(self, np_rng):
        layer = Dense(4, 3, rng=np_rng)
        errors = check_layer_param_grads(layer, np_rng.normal(size=(6, 4)))
        assert max(errors.values()) < TOL

    def test_backward_before_forward_raises(self, np_rng):
        layer = Dense(2, 2, rng=np_rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_parameter_count(self, np_rng):
        assert Dense(4, 3, rng=np_rng).parameter_count() == 4 * 3 + 3


class TestFlatten:
    def test_roundtrip(self, np_rng):
        layer = Flatten()
        x = np_rng.normal(size=(2, 3, 4, 5))
        out = layer.forward(x)
        assert out.shape == (2, 60)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)


@pytest.mark.parametrize("layer_cls", [Sigmoid, ReLU, Tanh])
class TestActivationLayers:
    def test_gradient(self, layer_cls, np_rng):
        layer = layer_cls()
        # offset avoids ReLU's kink at exactly zero
        x = np_rng.normal(size=(4, 5)) + 0.1
        assert check_layer_input_grad(layer, x) < 1e-6

    def test_stateless_params(self, layer_cls):
        assert layer_cls().params == {}

    def test_backward_before_forward_raises(self, layer_cls):
        with pytest.raises(RuntimeError):
            layer_cls().backward(np.ones((1, 1)))
