"""The networked runtime: framing, messages, services, end-to-end.

The loopback end-to-end tests run the authority key service and the
training server as asyncio services on real 127.0.0.1 sockets (hosted
by :class:`~repro.rpc.runtime.ServiceThread`) with client agents
uploading encrypted shards -- three entities, three event loops, real
bytes.  Every socket test carries the ``timeout_guard`` marker so a
transport bug can never hang the suite.
"""

import asyncio
import multiprocessing
import random
import time

import numpy as np
import pytest

from repro.core import protocol
from repro.core import serialization as ser
from repro.core.config import CryptoNNConfig
from repro.core.encdata import merge_encrypted_tabular
from repro.core.entities import Client, TrustedAuthority
from repro.data.preprocess import normalize_features, shared_feature_scale
from repro.data.tabular import load_clinics
from repro.fe.errors import UnsupportedOperationError
from repro.rpc import (
    AuthorityService,
    RemoteAuthority,
    RpcEndpoint,
    RpcRemoteError,
    ServiceThread,
    TrainingService,
    WireContext,
    fetch_status,
    free_port,
    run_training,
    upload_shard,
    wait_for_port,
)
from repro.rpc import framing
from repro.rpc import messages as msgs


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def _read_frames(data: bytes, count: int = 1, **kwargs):
    """Feed raw bytes through read_frame on a fresh event loop."""

    async def _read():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return [await framing.read_frame(reader, **kwargs)
                for _ in range(count)]

    frames = asyncio.run(_read())
    return frames[0] if count == 1 else frames


class TestFraming:
    def test_encode_decode_roundtrip(self):
        header = {"kind": "ack", "seq": 3}
        body = b"\x01\x02\x03"
        got_header, got_body = _read_frames(
            framing.encode_frame(header, body))
        assert got_header == header
        assert got_body == body

    def test_empty_body(self):
        _, body = _read_frames(framing.encode_frame({"kind": "x"}))
        assert body == b""

    def test_clean_eof_returns_none(self):
        assert _read_frames(b"") is None

    def test_truncated_frame_raises(self):
        frame = framing.encode_frame({"kind": "x"}, b"abcdef")
        with pytest.raises(framing.FrameError):
            _read_frames(frame[:-2])

    def test_oversized_frame_rejected(self):
        frame = framing.encode_frame({"kind": "x"}, b"y" * 100)
        with pytest.raises(framing.FrameError):
            _read_frames(frame, max_frame_bytes=50)

    def test_garbage_header_rejected(self):
        good = framing.encode_frame({"kind": "x"})
        corrupted = good[:8] + b"\xff" * (len(good) - 8)
        with pytest.raises(framing.FrameError):
            _read_frames(corrupted)

    def test_two_frames_back_to_back(self):
        data = framing.encode_frame({"kind": "a"}) + \
            framing.encode_frame({"kind": "b"}, b"zz")
        first, second, third = _read_frames(data, count=3)
        assert first[0]["kind"] == "a"
        assert second == ({"kind": "b"}, b"zz")
        assert third is None


@pytest.mark.timeout_guard(30)
class TestFramingAdversarial:
    """Hostile/corrupt wire input must raise FrameError (or clean-close)
    promptly -- never strand a reader.  The chaos proxy injects exactly
    these shapes, so this is the contract its faults rely on."""

    def test_header_truncated_mid_read(self):
        # connection dies inside the JSON header region
        frame = framing.encode_frame({"kind": "status", "seq": 12})
        with pytest.raises(framing.FrameError):
            _read_frames(frame[:12])

    def test_length_prefix_truncated_mid_read(self):
        with pytest.raises(framing.FrameError):
            _read_frames(b"\x00\x00")  # 2 of the 4 prefix bytes

    def test_oversized_length_prefix_rejected_before_payload(self):
        # a hostile 2 GiB announcement must be rejected from the prefix
        # alone -- no allocation, no waiting for bytes that never come
        prefix = (2 ** 31).to_bytes(4, "big")
        with pytest.raises(framing.FrameError, match="exceeds limit"):
            _read_frames(prefix)

    def test_zero_length_frame_rejected(self):
        with pytest.raises(framing.FrameError, match="below header"):
            _read_frames(b"\x00\x00\x00\x00")

    def test_non_json_header_bytes_rejected(self):
        # valid UTF-8, not JSON
        garbage = b"this is not json"
        payload = len(garbage).to_bytes(4, "big") + garbage
        frame = (4 + len(garbage)).to_bytes(4, "big") + payload
        with pytest.raises(framing.FrameError, match="undecodable"):
            _read_frames(frame)

    def test_non_object_json_header_rejected(self):
        header = b"[1,2,3]"
        payload = len(header).to_bytes(4, "big") + header
        frame = (4 + len(header)).to_bytes(4, "big") + payload
        with pytest.raises(framing.FrameError, match="JSON object"):
            _read_frames(frame)

    def test_header_length_overrunning_frame_rejected(self):
        # inner header length claims more bytes than the frame holds
        payload = (500).to_bytes(4, "big") + b'{"kind":"x"}'
        frame = len(payload).to_bytes(4, "big") + payload
        with pytest.raises(framing.FrameError, match="exceeds frame"):
            _read_frames(frame)

    def test_invalid_utf8_header_rejected(self):
        # the chaos proxy's corrupt fault: 0xff bytes where JSON was
        good = framing.encode_frame({"kind": "x", "seq": 1}, b"body")
        header_len = int.from_bytes(good[4:8], "big")
        corrupted = good[:8] + b"\xff" * header_len + good[8 + header_len:]
        with pytest.raises(framing.FrameError, match="undecodable"):
            _read_frames(corrupted)


# ---------------------------------------------------------------------------
# typed messages
# ---------------------------------------------------------------------------

@pytest.fixture()
def wire_ctx(params):
    return WireContext(params)


def roundtrip(msg, ctx=None):
    header, body = msgs.encode_message(msg, ctx)
    return msgs.decode_message(header, body, ctx)


class TestMessages:
    def test_public_params_roundtrip(self, params, rng):
        authority = TrustedAuthority(CryptoNNConfig(), rng=rng)
        msg = msgs.PublicParamsResponse(
            group=params,
            config={"security_bits": 32, "scale": 100},
            feip_keys={3: authority.feip_public_key(3),
                       5: authority.feip_public_key(5)},
            febo_key=authority.febo_public_key(),
        )
        got = roundtrip(msg)
        assert got.group == params
        assert got.feip_keys == msg.feip_keys
        assert got.febo_key == msg.febo_key
        assert got.make_config().scale == 100

    def test_feip_key_request_both_accountings(self, wire_ctx):
        rows = [[1, -2, 3], [4, 5, -6]]
        for batched in (False, True):
            msg = msgs.FeipKeyRequest(rows=rows, batched=batched,
                                      requester="server")
            got = roundtrip(msg, wire_ctx)
            assert got.rows == rows
            assert got.batched is batched
            _, body = msgs.encode_message(msg, wire_ctx)
            expected = ser.feip_key_batch_request_wire_size(
                2, 3, wire_ctx.params) if batched else \
                2 * ser.feip_key_request_wire_size(3, wire_ctx.params)
            assert len(body) == expected

    def test_febo_key_request_roundtrip(self, wire_ctx):
        requests = [(123, "*", 1), (456, "-", -700)]
        got = roundtrip(msgs.FeboKeyRequest(requests=requests), wire_ctx)
        assert got.requests == requests

    def test_encrypted_data_upload_roundtrip(self, wire_ctx, rng):
        authority = TrustedAuthority(CryptoNNConfig(), rng=rng)
        client = Client(authority, name="c0")
        x = np.random.default_rng(0).uniform(-1, 1, size=(3, 2))
        dataset = client.encrypt_tabular(x, np.array([0, 1, 0]), 2)
        msg = msgs.EncryptedDataUpload(dataset=dataset, client_name="c0")
        _, body = msgs.encode_message(msg, wire_ctx)
        assert len(body) == ser.encrypted_tabular_wire_size(
            3, 2, 2, wire_ctx.params)
        got = roundtrip(msg, wire_ctx)
        assert got.client_name == "c0"
        assert got.dataset.samples[1].features_ip == \
            dataset.samples[1].features_ip
        assert got.dataset.labels[2].onehot_bo == dataset.labels[2].onehot_bo
        assert got.dataset.eval_labels.tolist() == [0, 1, 0]

    def test_control_messages_roundtrip(self):
        status = roundtrip(msgs.TrainStatus(state="training", accuracy=None,
                                            detail={"clients": 2}))
        assert status.state == "training"
        assert status.detail["clients"] == 2
        err = roundtrip(msgs.ErrorMessage(message="nope", error_type="Boom"))
        assert err.error_type == "Boom"
        ckpt = roundtrip(msgs.TrainCheckpointRequest(requester="driver"))
        assert ckpt.requester == "driver"
        predict = roundtrip(msgs.PredictResponse(scores=[[0.25, 0.75]]))
        assert predict.scores == [[0.25, 0.75]]

    def test_unknown_kind_rejected(self):
        with pytest.raises(msgs.MessageError):
            msgs.decode_message({"kind": "no-such-kind"}, b"", None)

    def test_key_message_requires_ctx(self):
        with pytest.raises(msgs.MessageError):
            msgs.encode_message(msgs.FeipKeyRequest(rows=[[1]]), None)


# ---------------------------------------------------------------------------
# authority service over a real socket
# ---------------------------------------------------------------------------

@pytest.fixture()
def live_authority():
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
    thread = ServiceThread(AuthorityService(authority))
    host, port = thread.start()
    yield authority, thread, (host, port)
    thread.stop()


@pytest.mark.timeout_guard(60)
class TestAuthorityServiceLoopback:
    def test_handshake_matches_local_authority(self, live_authority):
        authority, _, addr = live_authority
        with RemoteAuthority(*addr, name="server") as remote:
            assert remote.params == authority.params
            assert remote.config == authority.config
            assert remote.feip_public_key(3) == authority.feip_public_key(3)
            assert remote.febo_public_key() == authority.febo_public_key()

    def test_remote_keys_decrypt_correctly(self, live_authority):
        _, _, addr = live_authority
        with RemoteAuthority(*addr, name="server",
                             rng=random.Random(5)) as remote:
            mpk = remote.feip_public_key(3)
            keys = remote.derive_feip_keys_batch([[1, 2, 3], [-4, 0, 6]])
            ct = remote.feip.encrypt(mpk, [7, -8, 9])
            assert remote.feip.decrypt(mpk, ct, keys[0], bound=1000) == \
                7 * 1 - 8 * 2 + 9 * 3
            bpk = remote.febo_public_key()
            bct = remote.febo.encrypt(bpk, 42)
            bkeys = remote.derive_febo_keys_batch([(bct.cmt, "-", 10)])
            assert bkeys[0].cmt == bct.cmt  # re-attached client-side
            assert remote.febo.decrypt(bpk, bkeys[0], bct, bound=100) == 32

    def test_connection_traffic_matches_wire_sizes(self, live_authority):
        authority, thread, addr = live_authority
        with RemoteAuthority(*addr, name="server") as remote:
            remote.derive_feip_keys_batch([[1, 2], [3, 4], [5, 6]])
        service = thread.service
        logs = [log for label, log in service.connection_traffic.items()
                if label.startswith("server#")]
        wired = sum(log.total_bytes(
            kind=protocol.KIND_FEIP_KEY_BATCH_REQUEST) for log in logs)
        assert wired == ser.feip_key_batch_request_wire_size(
            3, 2, authority.params, authority.config.key_weight_bytes)
        # the authority's own logical accounting agrees byte-for-byte
        assert wired == authority.traffic.total_bytes(
            kind=protocol.KIND_FEIP_KEY_BATCH_REQUEST)

    def test_remote_error_propagates_with_type(self, live_authority):
        authority, _, addr = live_authority
        bpk = authority.febo_public_key()
        ct = authority.febo.encrypt(bpk, 1)
        with RemoteAuthority(*addr, name="server") as remote:
            authority.permitted_ops = frozenset("+-")
            with pytest.raises(RpcRemoteError) as excinfo:
                remote.derive_febo_keys([(ct.cmt, "*", 2)])
            assert excinfo.value.error_type == \
                UnsupportedOperationError.__name__
            # the connection survives the error frame
            authority.permitted_ops = frozenset("+-*/")
            assert len(remote.derive_febo_keys([(ct.cmt, "*", 2)])) == 1

    def test_unknown_port_fails_fast(self):
        with pytest.raises(Exception):
            RemoteAuthority("127.0.0.1", free_port(), name="server",
                            connect_timeout=0.3, retries=0)


# ---------------------------------------------------------------------------
# end-to-end: three entities over real sockets
# ---------------------------------------------------------------------------

HIDDEN, EPOCHS, BATCH_SIZE, LR, SEED = 6, 2, 10, 0.5, 0


def _make_shards(n_clients=2, samples=15, features=4):
    shards = load_clinics(n_clinics=n_clients, samples_per_clinic=samples,
                          n_features=features, seed=3)
    scale = shared_feature_scale([s.x for s in shards])
    return [(normalize_features(s.x, scale), s.y) for s in shards]


def _in_process_accuracy(shards):
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(SEED))
    parts = [
        Client(authority, name=f"clinic-{i}").encrypt_tabular(x, y, 2)
        for i, (x, y) in enumerate(shards)
    ]
    merged = merge_encrypted_tabular(parts)
    _, _, accuracy = run_training(
        merged, authority, hidden=HIDDEN, epochs=EPOCHS,
        batch_size=BATCH_SIZE, learning_rate=LR, seed=SEED)
    return accuracy


@pytest.mark.timeout_guard(300)
class TestEndToEndLoopback:
    def test_three_entities_train_identically(self):
        """Authority, clients and training server over real sockets
        reproduce the in-process accuracy exactly (same seeds)."""
        shards = _make_shards()
        expected_accuracy = _in_process_accuracy(shards)

        authority = TrustedAuthority(CryptoNNConfig(),
                                     rng=random.Random(SEED))
        auth_thread = ServiceThread(AuthorityService(authority))
        auth_addr = auth_thread.start()
        service = TrainingService(
            *auth_addr, expected_clients=len(shards), hidden=HIDDEN,
            epochs=EPOCHS, batch_size=BATCH_SIZE, learning_rate=LR,
            seed=SEED)
        train_thread = ServiceThread(service)
        train_addr = train_thread.start()
        try:
            uploads = [
                upload_shard(auth_addr, train_addr, x, y, 2,
                             name=f"clinic-{i}",
                             rng=random.Random(100 + i))
                for i, (x, y) in enumerate(shards)
            ]
            train_thread.call(lambda: service.wait_done(timeout=240),
                              timeout=250)

            assert service.state == "done", service.error
            assert service.accuracy == expected_accuracy

            # per-connection upload bytes match the serialization sizes
            formula = ser.encrypted_tabular_wire_size(
                15, 4, 2, authority.params)
            for upload in uploads:
                assert upload["upload_bytes"] == formula
            logged = [
                log.total_bytes(kind=protocol.KIND_ENCRYPTED_DATA)
                for label, log in service.connection_traffic.items()
                if label.startswith("clinic-")
            ]
            assert sorted(logged) == [formula] * len(shards)

            # authority-side per-connection batch traffic equals the
            # authority's own logical accounting (packed bodies == formulas)
            server_logs = [
                log for label, log in
                auth_thread.service.connection_traffic.items()
                if label.startswith(protocol.SERVER)
            ]
            for kind in (protocol.KIND_FEIP_KEY_BATCH_REQUEST,
                         protocol.KIND_FEIP_KEY_BATCH_RESPONSE,
                         protocol.KIND_FEBO_KEY_BATCH_REQUEST,
                         protocol.KIND_FEBO_KEY_BATCH_RESPONSE):
                wired = sum(log.total_bytes(kind=kind)
                            for log in server_logs)
                assert wired == authority.traffic.total_bytes(kind=kind)
                assert wired > 0

            # predictions flow back over the same transport
            with RpcEndpoint(*train_addr, name="clinic-0",
                             peer=protocol.SERVER) as endpoint:
                resp = endpoint.request(
                    msgs.PredictRequest(indices=[0, 1, 2]))
            assert len(resp.scores) == 3
            assert all(len(row) == 2 for row in resp.scores)
        finally:
            train_thread.stop()
            auth_thread.stop()

    def test_status_answers_without_authority(self):
        """Control messages need no wire context: a status poll must not
        block on (or fail with) an authority handshake."""
        dead_authority = ("127.0.0.1", free_port())
        service = TrainingService(*dead_authority, expected_clients=1)
        thread = ServiceThread(service)
        addr = thread.start()
        try:
            start = time.monotonic()
            status = fetch_status(addr)
            assert status.state == "waiting"
            assert time.monotonic() - start < 5  # no 10s connect stall
        finally:
            thread.stop()

    def test_oversized_frame_fails_fast_client_side(self):
        shards = _make_shards(n_clients=1)
        authority = TrustedAuthority(CryptoNNConfig(),
                                     rng=random.Random(SEED))
        auth_thread = ServiceThread(AuthorityService(authority))
        auth_addr = auth_thread.start()
        service = TrainingService(*auth_addr, expected_clients=1)
        train_thread = ServiceThread(service)
        train_addr = train_thread.start()
        try:
            x, y = shards[0]
            with RemoteAuthority(*auth_addr, name="tiny",
                                 rng=random.Random(2)) as remote:
                dataset = Client(remote, name="tiny").encrypt_tabular(
                    x, y, 2)
                with RpcEndpoint(*train_addr, name="tiny",
                                 peer=protocol.SERVER,
                                 max_frame_bytes=64) as endpoint:
                    with pytest.raises(framing.FrameError,
                                       match="exceeds limit"):
                        endpoint.request(
                            msgs.EncryptedDataUpload(dataset=dataset,
                                                     client_name="tiny"),
                            remote.wire_ctx)
        finally:
            train_thread.stop()
            auth_thread.stop()

    def test_closed_endpoint_refuses_requests(self, live_authority):
        _, _, addr = live_authority
        endpoint = RpcEndpoint(*addr, name="x", peer=protocol.AUTHORITY)
        endpoint.close()
        from repro.rpc import RpcError
        with pytest.raises(RpcError, match="closed"):
            endpoint.request(msgs.PublicParamsRequest())

    def test_upload_with_workers_is_byte_exact(self):
        """`--workers N` parallel encryption changes neither the bytes
        on the wire nor the training trajectory: decryption recovers
        exact integers, so nonce provenance cannot leak into floats."""
        from repro.matrix.parallel import shutdown_compute_pools

        shards = _make_shards()
        expected_accuracy = _in_process_accuracy(shards)
        authority = TrustedAuthority(CryptoNNConfig(),
                                     rng=random.Random(SEED))
        auth_thread = ServiceThread(AuthorityService(authority))
        auth_addr = auth_thread.start()
        service = TrainingService(
            *auth_addr, expected_clients=len(shards), hidden=HIDDEN,
            epochs=EPOCHS, batch_size=BATCH_SIZE, learning_rate=LR,
            seed=SEED)
        train_thread = ServiceThread(service)
        train_addr = train_thread.start()
        try:
            uploads = [
                upload_shard(auth_addr, train_addr, x, y, 2,
                             name=f"clinic-{i}",
                             rng=random.Random(100 + i), workers=1)
                for i, (x, y) in enumerate(shards)
            ]
            train_thread.call(lambda: service.wait_done(timeout=240),
                              timeout=250)
            assert service.state == "done", service.error
            assert service.accuracy == expected_accuracy
            formula = ser.encrypted_tabular_wire_size(
                15, 4, 2, authority.params)
            for upload in uploads:
                assert upload["upload_bytes"] == formula
        finally:
            train_thread.stop()
            auth_thread.stop()
            shutdown_compute_pools()

    def test_duplicate_upload_is_idempotent(self):
        """A client resending after a lost ack must not duplicate its
        shard or start training early."""
        shards = _make_shards(n_clients=2)
        authority = TrustedAuthority(CryptoNNConfig(),
                                     rng=random.Random(SEED))
        auth_thread = ServiceThread(AuthorityService(authority))
        auth_addr = auth_thread.start()
        service = TrainingService(
            *auth_addr, expected_clients=2, hidden=4, epochs=1,
            batch_size=10, learning_rate=LR, seed=SEED)
        train_thread = ServiceThread(service)
        train_addr = train_thread.start()
        try:
            x, y = shards[0]
            first = upload_shard(auth_addr, train_addr, x, y, 2,
                                 name="clinic-0", rng=random.Random(1))
            resend = upload_shard(auth_addr, train_addr, x, y, 2,
                                  name="clinic-0", rng=random.Random(2))
            assert first["ack"]["clients"] == 1
            assert resend["ack"]["clients"] == 1  # replaced, not appended
            assert service.state == "waiting"
            x, y = shards[1]
            upload_shard(auth_addr, train_addr, x, y, 2, name="clinic-1",
                         rng=random.Random(3))
            train_thread.call(lambda: service.wait_done(timeout=120),
                              timeout=130)
            assert service.state == "done", service.error
            assert len(service.dataset) == 30  # 15 + 15, no duplicates
        finally:
            train_thread.stop()
            auth_thread.stop()

    def test_train_start_forces_early_training(self):
        shards = _make_shards(n_clients=1)
        authority = TrustedAuthority(CryptoNNConfig(),
                                     rng=random.Random(SEED))
        auth_thread = ServiceThread(AuthorityService(authority))
        auth_addr = auth_thread.start()
        service = TrainingService(
            *auth_addr, expected_clients=5, hidden=4, epochs=1,
            batch_size=10, learning_rate=LR, seed=SEED)
        train_thread = ServiceThread(service)
        train_addr = train_thread.start()
        try:
            x, y = shards[0]
            upload_shard(auth_addr, train_addr, x, y, 2, name="clinic-0",
                         rng=random.Random(9))
            with RpcEndpoint(*train_addr, name="driver",
                             peer=protocol.SERVER) as endpoint:
                status = endpoint.request(msgs.TrainStatusRequest())
                assert status.state == "waiting"
                endpoint.request(msgs.TrainStart())
            train_thread.call(lambda: service.wait_done(timeout=120),
                              timeout=130)
            assert service.state == "done", service.error
            assert 0.0 <= service.accuracy <= 1.0
        finally:
            train_thread.stop()
            auth_thread.stop()


# ---------------------------------------------------------------------------
# separate OS processes (the deployment shape)
# ---------------------------------------------------------------------------

def _serve_authority_proc(port: int) -> None:
    from repro.cli import main
    main(["serve-authority", "--port", str(port), "--seed", "0"])


def _serve_train_proc(port: int, authority_port: int) -> None:
    from repro.cli import main
    main(["serve-train", "--port", str(port),
          "--authority-port", str(authority_port),
          "--expected-clients", "1", "--hidden", "4", "--epochs", "1",
          "--batch-size", "10", "--stay"])


@pytest.mark.timeout_guard(300)
class TestMultiProcess:
    def test_cli_services_in_separate_processes(self):
        ctx = multiprocessing.get_context("fork")
        auth_port, train_port = free_port(), free_port()
        authority_proc = ctx.Process(
            target=_serve_authority_proc, args=(auth_port,), daemon=True)
        train_proc = ctx.Process(
            target=_serve_train_proc, args=(train_port, auth_port),
            daemon=True)
        try:
            authority_proc.start()
            wait_for_port("127.0.0.1", auth_port, timeout=30)
            train_proc.start()
            wait_for_port("127.0.0.1", train_port, timeout=30)

            (x, y), = _make_shards(n_clients=1, samples=10)
            result = upload_shard(
                ("127.0.0.1", auth_port), ("127.0.0.1", train_port),
                x, y, 2, name="clinic-0", rng=random.Random(1))
            assert result["ack"]["received"] == 10

            deadline = time.monotonic() + 240
            state = None
            with RpcEndpoint("127.0.0.1", train_port, name="driver",
                             peer=protocol.SERVER) as endpoint:
                while time.monotonic() < deadline:
                    status = endpoint.request(msgs.TrainStatusRequest())
                    state = status.state
                    if state in ("done", "failed"):
                        break
                    time.sleep(0.2)
            assert state == "done", getattr(status, "detail", None)
            assert 0.0 <= status.accuracy <= 1.0
        finally:
            for proc in (train_proc, authority_proc):
                if proc.is_alive():
                    proc.terminate()
                proc.join(timeout=10)
