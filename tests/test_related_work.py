"""Tests for the Table I regeneration."""

from repro.core.related_work import (
    FULL,
    SUPPORTED,
    TABLE_I,
    cryptonn_claims,
    format_table_i,
)


def test_cryptonn_row_claims():
    row = cryptonn_claims()
    assert row.name.startswith("CryptoNN")
    assert row.training == SUPPORTED
    assert row.prediction == SUPPORTED
    assert row.privacy == FULL
    assert row.approach == "Functional Encryption"


def test_cryptonn_is_only_fe_approach():
    fe_rows = [r for r in TABLE_I if "Functional" in r.approach]
    assert len(fe_rows) == 1


def test_only_crypto_rows_get_full_privacy():
    for row in TABLE_I:
        if row.privacy == FULL:
            assert ("Encryption" in row.approach or "HE" in row.approach)


def test_he_rows_do_not_train():
    he_only = [r for r in TABLE_I if r.approach.endswith("(HE)")]
    assert he_only and all(r.training == "no" for r in he_only)


def test_format_contains_all_rows_aligned():
    text = format_table_i()
    lines = text.splitlines()
    assert len(lines) == 2 + len(TABLE_I)
    assert len({len(line.rstrip()) <= len(lines[0]) for line in lines}) >= 1
    for row in TABLE_I:
        assert any(row.name in line for line in lines)
