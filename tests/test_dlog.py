"""Unit tests for the bounded discrete-log solver."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mathutils.dlog import (
    DiscreteLogError,
    DlogSolver,
    SolverCache,
    discrete_log_linear,
)


class TestDlogSolver:
    def test_solves_zero(self, group):
        solver = DlogSolver(group, bound=100)
        assert solver.solve(1) == 0

    def test_solves_positive_and_negative(self, group):
        solver = DlogSolver(group, bound=1000)
        for m in (1, 42, 999, -1, -999, 1000, -1000):
            assert solver.solve(group.gexp(m)) == m

    def test_out_of_bound_raises(self, group):
        solver = DlogSolver(group, bound=50)
        with pytest.raises(DiscreteLogError):
            solver.solve(group.gexp(51))
        with pytest.raises(DiscreteLogError):
            solver.solve(group.gexp(-51))

    def test_solve_nonneg(self, group):
        solver = DlogSolver(group, bound=50)
        assert solver.solve_nonneg(group.gexp(7)) == 7
        with pytest.raises(DiscreteLogError):
            solver.solve_nonneg(group.gexp(-7))

    def test_bound_zero_only_identity(self, group):
        solver = DlogSolver(group, bound=0)
        assert solver.solve(1) == 0
        with pytest.raises(DiscreteLogError):
            solver.solve(group.gexp(1))

    def test_rejects_negative_bound(self, group):
        with pytest.raises(ValueError):
            DlogSolver(group, bound=-1)

    def test_rejects_window_larger_than_group(self, group):
        with pytest.raises(ValueError):
            DlogSolver(group, bound=group.q)

    def test_custom_table_size(self, group):
        solver = DlogSolver(group, bound=500, table_size=10)
        for m in (-500, -3, 0, 77, 500):
            assert solver.solve(group.gexp(m)) == m

    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.integers(min_value=-4096, max_value=4096))
    def test_property_roundtrip(self, group, m):
        # the group fixture is stateless here, so sharing it across
        # hypothesis examples is safe
        solver = DlogSolver(group, bound=4096)
        assert solver.solve(group.gexp(m)) == m

    def test_agrees_with_linear_scan(self, group):
        solver = DlogSolver(group, bound=64)
        for m in range(-64, 65, 7):
            h = group.gexp(m)
            assert solver.solve(h) == m
            if m != 0:
                assert discrete_log_linear(group, h, 64) == m


class TestSolveMany:
    """solve_many must agree with per-element solve on every input class."""

    def test_dense_fast_path_matches_solve(self, group):
        solver = DlogSolver(group, bound=1000)  # window fits the table
        assert solver.table_size >= 2 * solver.bound + 1
        values = [0, 1, -1, 42, -999, 1000, -1000, 42, 0]
        targets = [group.gexp(v) for v in values]
        assert solver.solve_many(targets) == values
        assert solver.solve_many(targets) == [solver.solve(h)
                                              for h in targets]

    def test_batched_walk_matches_solve(self, group, rng):
        # a small table forces real giant-stepping: the batched path
        solver = DlogSolver(group, bound=4000, table_size=23)
        values = [rng.randrange(-4000, 4001) for _ in range(50)]
        values += [4000, -4000, 0] + values[:10]  # edges + duplicates
        targets = [group.gexp(v) for v in values]
        assert solver.solve_many(targets) == values
        assert solver.solve_many(targets) == [solver.solve(h)
                                              for h in targets]

    def test_empty_batch(self, group):
        assert DlogSolver(group, bound=10).solve_many([]) == []

    @pytest.mark.parametrize("table_size", [None, 7])
    def test_out_of_bound_raises_like_solve(self, group, table_size):
        solver = DlogSolver(group, bound=50, table_size=table_size)
        bad = group.gexp(51)
        with pytest.raises(DiscreteLogError):
            solver.solve(bad)
        with pytest.raises(DiscreteLogError):
            solver.solve_many([bad])
        with pytest.raises(DiscreteLogError):
            # one bad apple fails the whole batch, as m solve() calls would
            solver.solve_many([group.gexp(3), bad, group.gexp(-50)])

    def test_deduplicates_repeated_targets(self, group):
        solver = DlogSolver(group, bound=600, table_size=11)
        target = group.gexp(123)
        assert solver.solve_many([target] * 40 + [group.gexp(-7)]) == \
            [123] * 40 + [-7]


class TestSolverCache:
    def test_reuses_solver(self, group):
        cache = SolverCache()
        first = cache.get(group, 100)
        second = cache.get(group, 100)
        assert first is second
        assert len(cache) == 1

    def test_distinct_bounds_distinct_solvers(self, group):
        cache = SolverCache()
        assert cache.get(group, 100) is not cache.get(group, 200)
        assert len(cache) == 2

    def test_clear(self, group):
        cache = SolverCache()
        cache.get(group, 10)
        cache.clear()
        assert len(cache) == 0

    def test_unbounded_by_default(self, group):
        cache = SolverCache()
        for bound in range(1, 101):
            cache.get(group, bound)
        assert len(cache) == 100

    def test_lru_eviction_past_cap(self, group):
        cache = SolverCache(max_entries=3)
        solvers = {b: cache.get(group, b) for b in (10, 20, 30)}
        assert len(cache) == 3
        cache.get(group, 40)  # evicts bound=10, the least recently used
        assert len(cache) == 3
        assert cache.get(group, 20) is solvers[20]  # survived
        assert cache.get(group, 10) is not solvers[10]  # rebuilt

    def test_get_refreshes_recency(self, group):
        cache = SolverCache(max_entries=2)
        first = cache.get(group, 10)
        cache.get(group, 20)
        assert cache.get(group, 10) is first  # touch: 10 is now newest
        cache.get(group, 30)  # must evict 20, not 10
        assert cache.get(group, 10) is first

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            SolverCache(max_entries=0)

    def test_global_cache_is_bounded(self):
        from repro.mathutils.dlog import (
            GLOBAL_SOLVER_CACHE,
            GLOBAL_SOLVER_CACHE_ENTRIES,
        )
        assert GLOBAL_SOLVER_CACHE.max_entries == GLOBAL_SOLVER_CACHE_ENTRIES
