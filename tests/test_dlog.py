"""Unit tests for the bounded discrete-log solver."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mathutils.dlog import (
    DiscreteLogError,
    DlogSolver,
    SolverCache,
    discrete_log_linear,
)


class TestDlogSolver:
    def test_solves_zero(self, group):
        solver = DlogSolver(group, bound=100)
        assert solver.solve(1) == 0

    def test_solves_positive_and_negative(self, group):
        solver = DlogSolver(group, bound=1000)
        for m in (1, 42, 999, -1, -999, 1000, -1000):
            assert solver.solve(group.gexp(m)) == m

    def test_out_of_bound_raises(self, group):
        solver = DlogSolver(group, bound=50)
        with pytest.raises(DiscreteLogError):
            solver.solve(group.gexp(51))
        with pytest.raises(DiscreteLogError):
            solver.solve(group.gexp(-51))

    def test_solve_nonneg(self, group):
        solver = DlogSolver(group, bound=50)
        assert solver.solve_nonneg(group.gexp(7)) == 7
        with pytest.raises(DiscreteLogError):
            solver.solve_nonneg(group.gexp(-7))

    def test_bound_zero_only_identity(self, group):
        solver = DlogSolver(group, bound=0)
        assert solver.solve(1) == 0
        with pytest.raises(DiscreteLogError):
            solver.solve(group.gexp(1))

    def test_rejects_negative_bound(self, group):
        with pytest.raises(ValueError):
            DlogSolver(group, bound=-1)

    def test_rejects_window_larger_than_group(self, group):
        with pytest.raises(ValueError):
            DlogSolver(group, bound=group.q)

    def test_custom_table_size(self, group):
        solver = DlogSolver(group, bound=500, table_size=10)
        for m in (-500, -3, 0, 77, 500):
            assert solver.solve(group.gexp(m)) == m

    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.integers(min_value=-4096, max_value=4096))
    def test_property_roundtrip(self, group, m):
        # the group fixture is stateless here, so sharing it across
        # hypothesis examples is safe
        solver = DlogSolver(group, bound=4096)
        assert solver.solve(group.gexp(m)) == m

    def test_agrees_with_linear_scan(self, group):
        solver = DlogSolver(group, bound=64)
        for m in range(-64, 65, 7):
            h = group.gexp(m)
            assert solver.solve(h) == m
            if m != 0:
                assert discrete_log_linear(group, h, 64) == m


class TestSolverCache:
    def test_reuses_solver(self, group):
        cache = SolverCache()
        first = cache.get(group, 100)
        second = cache.get(group, 100)
        assert first is second
        assert len(cache) == 1

    def test_distinct_bounds_distinct_solvers(self, group):
        cache = SolverCache()
        assert cache.get(group, 100) is not cache.get(group, 200)
        assert len(cache) == 2

    def test_clear(self, group):
        cache = SolverCache()
        cache.get(group, 10)
        cache.clear()
        assert len(cache) == 0
