#!/usr/bin/env python3
"""Quickstart: the CryptoNN crypto stack in five minutes.

Walks through the two functional-encryption schemes and the secure
matrix computation built on them -- everything the CryptoNN framework
uses under the hood.

Run:  python examples/quickstart.py
"""

import random

import numpy as np

from repro.fe import Febo, Feip
from repro.matrix import (
    SecureMatrixScheme,
    matrix_bound_dot,
    matrix_bound_elementwise,
)
from repro.mathutils import FixedPointCodec, GroupParams


def main() -> None:
    rng = random.Random(42)
    # The paper uses a 256-bit security parameter; smaller toy groups make
    # demos instant and exercise the identical code path.
    params = GroupParams.predefined(64)
    print(f"Schnorr group: {params.bits}-bit safe prime\n")

    # --- FEIP: functional encryption for inner products --------------------
    print("== FEIP (Abdalla et al.): inner products over encrypted vectors ==")
    feip = Feip(params, rng=rng)
    mpk, msk = feip.setup(eta=4)
    x = [3, -1, 4, 1]                  # client's secret vector
    y = [10, 20, 30, 40]               # server's public weights
    ct = feip.encrypt(mpk, x)          # client encrypts
    skf = feip.key_derive(msk, y)      # authority derives the function key
    result = feip.decrypt(mpk, ct, skf, bound=10_000)  # server decrypts
    print(f"  <x, y> recovered from ciphertext: {result}")
    assert result == sum(a * b for a, b in zip(x, y))

    # --- FEBO: the paper's new scheme for basic arithmetic -----------------
    print("\n== FEBO (paper Section III-B): x delta y over encrypted x ==")
    febo = Febo(params, rng=rng)
    bpk, bmsk = febo.setup()
    secret = 27
    ct = febo.encrypt(bpk, secret)
    for op, operand in [("+", 15), ("-", 40), ("*", -3), ("/", 9)]:
        key = febo.key_derive(bmsk, ct.cmt, op, operand)
        value = febo.decrypt(bpk, key, ct, bound=10_000)
        print(f"  enc({secret}) {op} {operand} = {value}")

    # --- secure matrix computation (Algorithm 1) ---------------------------
    print("\n== Secure matrix computation (Algorithm 1) ==")
    scheme = SecureMatrixScheme(params, rng=rng)
    msk_ip, msk_bo = scheme.setup(column_length=3)
    x_matrix = np.array([[1, 2], [3, 4], [5, 6]], dtype=object)   # client
    w_matrix = np.array([[1, 0, -1], [2, 2, 2]], dtype=object)    # server
    encrypted = scheme.pre_process_encryption(x_matrix)
    dot_keys = scheme.derive_dot_keys(msk_ip, w_matrix)
    z = scheme.secure_dot(encrypted, dot_keys, matrix_bound_dot(6, 2, 3))
    print(f"  W @ X over encrypted X:\n{z}")
    assert (z == w_matrix @ x_matrix).all()

    y_matrix = np.array([[10, 20], [30, 40], [50, 60]], dtype=object)
    ew_keys = scheme.derive_elementwise_keys(msk_bo, "+", y_matrix,
                                             encrypted.commitments())
    z_add = scheme.secure_elementwise(encrypted, ew_keys,
                                      matrix_bound_elementwise("+", 6, 60))
    print(f"  X + Y element-wise over encrypted X:\n{z_add}")
    assert (z_add == x_matrix + y_matrix).all()

    # --- fixed point: how floats enter the crypto layer --------------------
    print("\n== Fixed-point encoding (paper keeps two decimals) ==")
    codec = FixedPointCodec(scale=100)
    value = 3.14159
    encoded = codec.encode(value)
    print(f"  {value} -> {encoded} -> {codec.decode(encoded)}")
    print("\nAll quickstart checks passed.")


if __name__ == "__main__":
    main()
