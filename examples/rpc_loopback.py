#!/usr/bin/env python3
"""Loopback multi-process demo of the networked runtime.

Runs the three CryptoNN entities as genuinely separate OS processes
talking over 127.0.0.1 sockets:

* an **authority key service** process (owns every master secret),
* a **training server** process (drives the secure training loop,
  fetching function keys over the wire),
* one **client process per clinic** (encrypts locally, uploads the
  ciphertexts).

Afterwards the driver replays the identical run in-process (same seeds,
same entry point) and checks that both paths reach the *same* accuracy:
decryption recovers exact integers, so the transport cannot change the
floating-point trajectory.

With ``--chaos-rate > 0`` the training server's authority link is
routed through a :class:`~repro.rpc.chaos.ChaosProxy` (hosted by the
driver) that injects connection resets, stalls, truncations, header
corruption and latency from the deterministic schedule seeded by
``--chaos-seed`` -- and the accuracy comparison against the clean
in-process run still holds, because the retry layer resends idempotent
key requests until they land.

Run:  python examples/rpc_loopback.py [--chaos-rate 0.2 --chaos-seed 7]
"""

import argparse
import multiprocessing
import random
import time

from repro.cli import main as repro_cli
from repro.core import CryptoNNConfig, TrustedAuthority
from repro.core.encdata import merge_encrypted_tabular
from repro.core.entities import Client
from repro.data import load_clinics, normalize_features, shared_feature_scale
from repro.rpc import (
    ChaosConfig,
    ChaosProxy,
    RpcEndpoint,
    ServiceThread,
    free_port,
    run_training,
    wait_for_port,
)
from repro.rpc.messages import MetricsRequest, TrainStatusRequest

N_CLIENTS = 2
SAMPLES = 20
FEATURES = 4
HIDDEN = 6
EPOCHS = 2
BATCH_SIZE = 10
LEARNING_RATE = 0.5
SEED = 0


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="loopback multi-process CryptoNN demo")
    parser.add_argument(
        "--chaos-rate", type=float, default=0.0,
        help="inject transport faults on the training server's "
             "authority link at this total rate (spread evenly over "
             "resets, stalls, truncations, header corruption and "
             "latency); 0 disables the chaos proxy")
    parser.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the deterministic fault schedule -- the same "
             "seed and rate reproduce the same faults on the same "
             "exchanges")
    parser.add_argument(
        "--chunk-bytes", type=int, default=512,
        help="deliver each upload as resumable fingerprinted chunks of "
             "this size (a dropped client resumes at the last acked "
             "chunk); 0 sends the legacy single-frame upload")
    return parser.parse_args(argv)


def print_metrics_summary(snapshot: dict) -> None:
    """Digest a ``service-metrics`` scrape of the training server.

    Surfaces the counter families the run exercised: rpc retry
    weather, decryption-pool utilization, the encrypt/decrypt engine
    counters uploaded by the clients, and the per-phase timing
    histograms from the paper's cost decomposition.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    hists = snapshot.get("histograms", {})
    print("\ntraining-server metrics scrape:")
    print(f"  rpc: {counters.get('repro_rpc_attempts_total', 0)} attempts, "
          f"{counters.get('repro_rpc_retries_total', 0)} retries, "
          f"{counters.get('repro_rpc_timeouts_total', 0)} timeouts, "
          f"{counters.get('repro_rpc_reconnects_total', 0)} reconnects")
    print(f"  pool: {counters.get('repro_pool_dispatches_total', 0)} "
          f"dispatches on {gauges.get('repro_pool_workers', 0):.0f} workers "
          f"({counters.get('repro_pool_degraded_dispatches_total', 0)} "
          f"degraded)")
    print(f"  client engines: "
          f"{counters.get('repro_client_engine_precomputed_total', 0)} "
          f"nonces precomputed, "
          f"{counters.get('repro_client_engine_consumed_total', 0)} consumed, "
          f"{counters.get('repro_client_engine_misses_total', 0)} misses")
    print(f"  trainer: {counters.get('repro_trainer_feip_decrypts_total', 0)} "
          f"feip + {counters.get('repro_trainer_febo_decrypts_total', 0)} "
          f"febo decrypts")
    phases = []
    for name, hist in sorted(hists.items()):
        if name.startswith("repro_phase_seconds"):
            phase = name.split('phase="', 1)[-1].rstrip('"}')
            phases.append(f"{phase} {hist['sum']:.2f}s/{hist['count']}")
    if phases:
        print("  phases: " + ", ".join(phases))


def _drive_remote_run(train_port: int, proxy) -> float:
    """Poll the training server to completion, then scrape its metrics.

    One endpoint for the whole poll loop: one TCP connection, not one
    per poll.  Returns the remote run's accuracy.
    """
    deadline = time.monotonic() + 300
    status = None
    metrics = None
    with RpcEndpoint("127.0.0.1", train_port, name="driver",
                     peer="server") as endpoint:
        while time.monotonic() < deadline:
            try:
                status = endpoint.request(TrainStatusRequest())
            except Exception:
                status = None  # server busy starting up; retry
            if status is not None and status.state in ("done", "failed"):
                break
            time.sleep(0.3)
        # scrape the server's ops surface before it is torn down
        try:
            metrics = endpoint.request(MetricsRequest(requester="driver"))
        except Exception:
            metrics = None
    if status is None or status.state != "done":
        detail = status.detail.get("error") if status else "no status"
        raise RuntimeError(
            f"remote training did not finish: "
            f"{status.state if status else 'unreachable'} ({detail})")
    print(f"\ndistributed run (3+ processes): accuracy "
          f"{status.accuracy:.2%}")
    if proxy is not None:
        summary = proxy.fault_summary()
        injected = summary["drops"] + summary["timeouts"] \
            + summary["injected_delay"]
        print(f"chaos weather: {injected} faults injected over "
              f"{summary['exchanges']} exchanges "
              f"({summary['drops']} drops, {summary['timeouts']} stalls, "
              f"{summary['injected_delay']} delays)")
    if metrics is not None:
        print_metrics_summary(metrics.metrics)
    return status.accuracy


def main(argv=None) -> None:
    args = parse_args(argv)
    ctx = multiprocessing.get_context("fork")
    auth_port, train_port = free_port(), free_port()

    # -- three entities, three (or more) processes --------------------------
    authority_proc = ctx.Process(
        target=repro_cli,
        args=(["serve-authority", "--port", str(auth_port),
               "--seed", str(SEED)],),
        daemon=True)
    authority_proc.start()
    wait_for_port("127.0.0.1", auth_port)

    # optionally interpose the chaos proxy on the authority link: the
    # training server dials the proxy, the proxy dials the authority
    proxy_thread = None
    proxy = None
    server_auth_port = auth_port
    if args.chaos_rate > 0:
        proxy = ChaosProxy(
            "127.0.0.1", auth_port, seed=args.chaos_seed,
            config=ChaosConfig.uniform(args.chaos_rate, stall_s=2.0))
        proxy_thread = ServiceThread(proxy)
        _, server_auth_port = proxy_thread.start()
        print(f"chaos proxy on the authority link: rate "
              f"{args.chaos_rate:.0%}, seed {args.chaos_seed}")

    # server and clients run pooled (--workers 2): pooled decryption /
    # encryption is numerically identical to serial and puts the pool
    # and engine counter families on the metrics scrape below.  Pool
    # workers are child processes, so these two cannot be daemonic --
    # the finally block below reaps them instead.
    train_proc = ctx.Process(
        target=repro_cli,
        args=(["serve-train", "--port", str(train_port),
               "--authority-port", str(server_auth_port),
               "--expected-clients", str(N_CLIENTS),
               "--hidden", str(HIDDEN), "--epochs", str(EPOCHS),
               "--batch-size", str(BATCH_SIZE),
               "--learning-rate", str(LEARNING_RATE),
               # stalls must convert into quick retried timeouts, not
               # two-minute hangs
               "--authority-timeout", "2.0",
               "--workers", "2",
               "--seed", str(SEED), "--stay"],))
    train_proc.start()
    wait_for_port("127.0.0.1", train_port)

    client_procs = []
    for i in range(N_CLIENTS):
        upload_argv = ["client-upload", "--authority-port", str(auth_port),
                       "--server-port", str(train_port),
                       "--clinic", str(i), "--clinics", str(N_CLIENTS),
                       "--samples", str(SAMPLES), "--features", str(FEATURES),
                       "--workers", "2",
                       "--seed", str(SEED)]
        if args.chunk_bytes > 0:
            upload_argv += ["--chunk-bytes", str(args.chunk_bytes)]
        proc = ctx.Process(target=repro_cli, args=(upload_argv,))
        proc.start()
        client_procs.append(proc)
    try:
        for i, proc in enumerate(client_procs):
            proc.join(timeout=120)
            if proc.exitcode != 0:
                raise RuntimeError(
                    f"client-{i} upload failed (exit code {proc.exitcode}); "
                    f"see its output above")

        remote_accuracy = _drive_remote_run(train_port, proxy)
    finally:
        for proc in [train_proc, *client_procs]:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=10)
        authority_proc.terminate()
        authority_proc.join(timeout=10)
        if proxy_thread is not None:
            proxy_thread.stop()

    # -- identical run in one process: same seeds, same entry point ---------
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(SEED))
    shards = load_clinics(n_clinics=N_CLIENTS, samples_per_clinic=SAMPLES,
                          n_features=FEATURES, seed=SEED)
    scale = shared_feature_scale([s.x for s in shards])
    parts = []
    for i, shard in enumerate(shards):
        client = Client(authority, name=f"client-{i}")
        parts.append(client.encrypt_tabular(
            normalize_features(shard.x, scale), shard.y, 2))
    merged = merge_encrypted_tabular(parts)
    _, _, local_accuracy = run_training(
        merged, authority, hidden=HIDDEN, epochs=EPOCHS,
        batch_size=BATCH_SIZE, learning_rate=LEARNING_RATE, seed=SEED)
    print(f"in-process run (one process):   accuracy {local_accuracy:.2%}")
    print(f"identical across transports:    "
          f"{remote_accuracy == local_accuracy}")


if __name__ == "__main__":
    main()
