#!/usr/bin/env python3
"""Federated clinics: training an MLP diagnostic model over encrypted data.

The paper's motivating scenario (Section I): distributed federal clinics
want a cloud-trained diagnostic model, but regulations forbid shipping
plaintext patient records.  Each clinic encrypts its shard under the
shared authority's public key; the server trains a CryptoNN model over
the union without ever seeing features or labels.

Run:  python examples/clinic_mlp.py
"""

import random

import numpy as np

from repro.core import CryptoNNConfig, CryptoNNTrainer, TrustedAuthority
from repro.core.encdata import EncryptedTabularDataset
from repro.core.entities import Client
from repro.data import LabelMapper, load_clinics, one_hot
from repro.nn import SGD, Dense, ReLU, Sequential, SoftmaxCrossEntropyLoss


def merge_encrypted(parts):
    """Server-side concatenation of shards from different clinics."""
    first = parts[0]
    return EncryptedTabularDataset(
        samples=[s for p in parts for s in p.samples],
        labels=[l for p in parts for l in p.labels],
        num_classes=first.num_classes,
        n_features=first.n_features,
        scale=first.scale,
        eval_labels=np.concatenate([p.eval_labels for p in parts]),
    )


def main() -> None:
    # -- authority bootstraps the crypto system -----------------------------
    config = CryptoNNConfig()  # toy group for the demo; .paper() for 256-bit
    authority = TrustedAuthority(config, rng=random.Random(0))

    # -- three clinics encrypt their (non-IID) shards -----------------------
    shards = load_clinics(n_clinics=3, samples_per_clinic=100, n_features=8,
                          seed=1)
    max_abs = max(np.abs(s.x).max() for s in shards) + 1e-9
    label_mapper = LabelMapper(2, np.random.default_rng(99))  # shared secret
    encrypted_shards = []
    for i, shard in enumerate(shards):
        clinic = Client(authority, label_mapper=label_mapper,
                        name=f"clinic-{i}")
        normalized = np.clip(shard.x / max_abs, -1, 1)
        encrypted_shards.append(
            clinic.encrypt_tabular(normalized, shard.y, num_classes=2)
        )
        print(f"clinic-{i}: encrypted {len(shard)} records")

    dataset = merge_encrypted(encrypted_shards)
    print(f"server: received {len(dataset)} encrypted records\n")

    # -- server trains without seeing any plaintext -------------------------
    rng = np.random.default_rng(0)
    model = Sequential([
        Dense(8, 16, rng=rng), ReLU(),
        Dense(16, 2, rng=rng),
    ])
    trainer = CryptoNNTrainer(model, authority)
    history = trainer.fit(dataset, SGD(0.5), epochs=4, batch_size=25,
                          rng=np.random.default_rng(1),
                          on_batch=lambda i, loss, acc: print(
                              f"  iter {i:3d}  loss={loss:.3f}  batch-acc={acc:.2f}")
                          if i % 6 == 0 else None)
    print(f"\nencrypted-training accuracy: {trainer.evaluate(dataset):.2%}")

    # -- plaintext twin for reference (same weights, same batches) ----------
    twin = Sequential([Dense(8, 16), ReLU(), Dense(16, 2)])
    twin.set_weights(model.get_weights())  # final weights -> same predictions
    merged_x = np.concatenate([np.clip(s.x / max_abs, -1, 1) for s in shards])
    wire_labels = dataset.eval_labels
    print(f"plaintext check with same weights: "
          f"{twin.evaluate(merged_x, one_hot(wire_labels, 2)):.2%}")

    # -- what the protocol cost ----------------------------------------------
    print("\nprotocol traffic (bytes by message kind):")
    for kind, total in sorted(authority.traffic.by_kind().items()):
        print(f"  {kind:20s} {total:>12,}")
    print(f"\nauthority issued {authority.feip_keys_issued} FEIP keys and "
          f"{authority.febo_keys_issued} FEBO keys")
    print(f"server performed {trainer.counters.feip_decrypts} FEIP decrypts "
          f"and {trainer.counters.febo_decrypts} FEBO decrypts")


if __name__ == "__main__":
    main()
