#!/usr/bin/env python3
"""FE-based prediction phase (paper Sections II-A and III-D "Prediction").

After training, the model serves *encrypted* queries: the client encrypts
a fresh sample, the server runs only the secure feed-forward plus the
plaintext tail, and obtains the class scores.  The paper's point: unlike
HE-based prediction the server learns the prediction result (a flexible
privacy choice), while never seeing the query features.

Run:  python examples/secure_inference.py
"""

import random

import numpy as np

from repro.core import CryptoNNConfig, CryptoNNTrainer, TrustedAuthority
from repro.core.entities import Client
from repro.data import load_clinics
from repro.nn import SGD, Dense, ReLU, Sequential


def main() -> None:
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(3))
    client = Client(authority)

    # -- train over encrypted data (condensed; see clinic_mlp.py) ----------
    shard = load_clinics(n_clinics=1, samples_per_clinic=150, n_features=6,
                         seed=21)[0]
    max_abs = np.abs(shard.x).max() + 1e-9
    x = np.clip(shard.x / max_abs, -1, 1)
    train_enc = client.encrypt_tabular(x[:120], shard.y[:120], num_classes=2)
    rng = np.random.default_rng(0)
    model = Sequential([Dense(6, 10, rng=rng), ReLU(), Dense(10, 2, rng=rng)])
    trainer = CryptoNNTrainer(model, authority)
    trainer.fit(train_enc, SGD(0.5), epochs=4, batch_size=24,
                rng=np.random.default_rng(1))
    print(f"trained over encrypted data; "
          f"train accuracy {trainer.evaluate(train_enc):.2%}\n")

    # -- serve encrypted queries -------------------------------------------
    queries_x, queries_y = x[120:], shard.y[120:]
    query_enc = client.encrypt_tabular(queries_x, queries_y, num_classes=2)
    before = trainer.counters.snapshot()
    probs = trainer.predict(query_enc)
    after = trainer.counters.snapshot()

    print("encrypted query inference:")
    print("query   p(class 0)  p(class 1)  predicted  truth")
    for i in range(min(10, len(queries_y))):
        print(f"{i:5d}   {probs[i, 0]:.3f}       {probs[i, 1]:.3f}       "
              f"{probs[i].argmax():^9d}  {queries_y[i]:^5d}")
    accuracy = (probs.argmax(axis=1) == queries_y).mean()
    print(f"\naccuracy on {len(queries_y)} encrypted queries: {accuracy:.2%}")

    # inference uses only the secure feed-forward: FEIP decrypts, no FEBO
    feip_used = after["feip_decrypts"] - before["feip_decrypts"]
    febo_used = after["febo_decrypts"] - before["febo_decrypts"]
    print(f"\ninference cost: {feip_used} FEIP decrypts, {febo_used} FEBO "
          f"decrypts (prediction is the feed-forward sub-process of "
          f"training -- paper Section III-D)")
    assert febo_used == 0


if __name__ == "__main__":
    main()
