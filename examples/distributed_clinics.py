#!/usr/bin/env python3
"""Distributed data sources with a shared label-mapping secret.

Demonstrates the paper's "Distributed data source" property (Section
III-A): any number of data owners can contribute, as long as everything
is encrypted under the same public key.  Also shows the anti-inference
label mapping in action -- the server's view of the labels is a secret
permutation, and only the clients can interpret predictions.

Run:  python examples/distributed_clinics.py
"""

import random

import numpy as np

from repro.core import CryptoNNConfig, CryptoNNTrainer, TrustedAuthority
from repro.core.encdata import EncryptedTabularDataset
from repro.core.entities import Client
from repro.data import LabelMapper, load_clinics
from repro.nn import SGD, Dense, ReLU, Sequential


def main() -> None:
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(7))

    # five clinics of different sizes, non-IID shards
    shards = load_clinics(n_clinics=5, samples_per_clinic=60, n_features=6,
                          clinic_shift=0.5, seed=11)
    max_abs = max(np.abs(s.x).max() for s in shards) + 1e-9

    # the clients share the label-mapping secret; the AUTHORITY distributes
    # it alongside the public keys, the server never sees it
    mapper = LabelMapper(2, np.random.default_rng(12345))
    print(f"secret label permutation (client-side only): "
          f"{mapper.permutation.tolist()}\n")

    parts = []
    for i, shard in enumerate(shards):
        client = Client(authority, label_mapper=mapper, name=f"clinic-{i}")
        x = np.clip(shard.x / max_abs, -1, 1)
        parts.append(client.encrypt_tabular(x, shard.y, num_classes=2))
        upload = authority.traffic.total_bytes(sender=f"clinic-{i}")
        print(f"clinic-{i}: {len(shard)} records -> {upload:,} bytes uploaded")

    dataset = EncryptedTabularDataset(
        samples=[s for p in parts for s in p.samples],
        labels=[l for p in parts for l in p.labels],
        num_classes=2, n_features=6, scale=authority.config.scale,
        eval_labels=np.concatenate([p.eval_labels for p in parts]),
    )

    rng = np.random.default_rng(0)
    model = Sequential([Dense(6, 10, rng=rng), ReLU(), Dense(10, 2, rng=rng)])
    trainer = CryptoNNTrainer(model, authority)
    trainer.fit(dataset, SGD(0.5), epochs=4, batch_size=30,
                rng=np.random.default_rng(1))
    print(f"\nserver-side accuracy (in wire-label space): "
          f"{trainer.evaluate(dataset):.2%}")

    # -- prediction: only a client can interpret the output -------------------
    probs_wire = trainer.predict(dataset, np.arange(8))
    wire_classes = probs_wire.argmax(axis=1)
    logical = mapper.unmap_labels(wire_classes)
    truth = mapper.unmap_labels(dataset.eval_labels[:8])
    print("\nsample  server sees (wire)  client decodes  ground truth")
    for i in range(8):
        print(f"{i:6d}  {wire_classes[i]:^18d}  {logical[i]:^14d}  {truth[i]:^12d}")
    print("\nThe wire labels are meaningless without the clients' secret "
          "permutation -- the paper's mitigation for label inference.")


if __name__ == "__main__":
    main()
