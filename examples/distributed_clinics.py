#!/usr/bin/env python3
"""Distributed data sources over the real networked runtime.

Demonstrates the paper's "Distributed data source" property (Section
III-A) on actual sockets: the authority key service and the training
server run as separate asyncio services, five clinic clients encrypt
locally and upload their shards over TCP, and the training server
drives the secure training loop while fetching function keys over the
wire -- one batched key envelope per iteration step instead of the
k x n x |w| request fan-out (Section IV-B2).

The anti-inference label mapping still applies: the server's view of
the labels is a secret permutation distributed by the authority
alongside the public keys, so only the clients can interpret the
predictions they fetch back from the server.

Run:  python examples/distributed_clinics.py
"""

import random

import numpy as np

from repro.core import CryptoNNConfig, TrustedAuthority
from repro.core import protocol
from repro.data import (
    LabelMapper,
    load_clinics,
    normalize_features,
    shared_feature_scale,
)
from repro.rpc import (
    AuthorityService,
    RpcEndpoint,
    ServiceThread,
    TrainingService,
    upload_shard,
)
from repro.rpc.messages import PredictRequest


def main() -> None:
    # -- the authority: master keys never leave this service ---------------
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(7))
    authority_thread = ServiceThread(AuthorityService(authority))
    auth_host, auth_port = authority_thread.start()
    print(f"authority key service at {auth_host}:{auth_port}")

    # -- the training server: trains once all five clinics upload ----------
    train_service = TrainingService(
        auth_host, auth_port, expected_clients=5,
        hidden=10, epochs=4, batch_size=30, learning_rate=0.5, seed=0)
    train_thread = ServiceThread(train_service)
    srv_host, srv_port = train_thread.start()
    print(f"training server at {srv_host}:{srv_port}\n")

    # five clinics of different sizes, non-IID shards
    shards = load_clinics(n_clinics=5, samples_per_clinic=60, n_features=6,
                          clinic_shift=0.5, seed=11)
    scale = shared_feature_scale([s.x for s in shards])

    # the clients share the label-mapping secret; the AUTHORITY distributes
    # it alongside the public keys, the server never sees it
    mapper = LabelMapper(2, np.random.default_rng(12345))
    print(f"secret label permutation (client-side only): "
          f"{mapper.permutation.tolist()}\n")

    for i, shard in enumerate(shards):
        result = upload_shard(
            (auth_host, auth_port), (srv_host, srv_port),
            normalize_features(shard.x, scale), shard.y, 2,
            name=f"clinic-{i}", label_mapper=mapper,
            rng=random.Random(100 + i))
        print(f"clinic-{i}: {len(shard)} records -> "
              f"{result['upload_bytes']:,} bytes over the socket")

    # -- wait for the remote training run to finish ------------------------
    train_thread.call(lambda: train_service.wait_done(timeout=600),
                      timeout=620)
    if train_service.state != "done":
        raise RuntimeError(f"remote training failed: {train_service.error}")
    print(f"\nserver-side accuracy (in wire-label space): "
          f"{train_service.accuracy:.2%}")

    # per-iteration key traffic, as actually framed on the wire
    server_logs = [
        log for label, log in
        authority_thread.service.connection_traffic.items()
        if label.startswith(protocol.SERVER)
    ]
    batch_up = sum(log.total_bytes(
        kind=protocol.KIND_FEIP_KEY_BATCH_REQUEST) for log in server_logs)
    batch_msgs = sum(log.message_count(
        protocol.KIND_FEIP_KEY_BATCH_REQUEST) for log in server_logs)
    print(f"feip key requests: {batch_msgs} batched envelopes, "
          f"{batch_up:,} bytes server->authority")

    # -- prediction: only a client can interpret the output -----------------
    with RpcEndpoint(srv_host, srv_port, name="clinic-0",
                     peer=protocol.SERVER) as endpoint:
        scores = endpoint.request(
            PredictRequest(indices=list(range(8)), requester="clinic-0"))
    wire_classes = np.array([int(np.argmax(row)) for row in scores.scores])
    logical = mapper.unmap_labels(wire_classes)
    truth = mapper.unmap_labels(
        train_service.dataset.eval_labels[:8])
    print("\nsample  server sees (wire)  client decodes  ground truth")
    for i in range(8):
        print(f"{i:6d}  {wire_classes[i]:^18d}  {logical[i]:^14d}  "
              f"{truth[i]:^12d}")
    print("\nThe wire labels are meaningless without the clients' secret "
          "permutation -- the paper's mitigation for label inference.")

    train_thread.stop()
    authority_thread.stop()


if __name__ == "__main__":
    main()
