#!/usr/bin/env python3
"""CryptoCNN vs plain CNN on digit images (paper Section III-E / Fig. 6).

Trains a LeNet-style CNN twice from identical initial weights: once on
plaintext images, once over encrypted images with the secure convolution
(Algorithm 3) feed-forward and secure softmax/cross-entropy evaluation.
Prints the per-iteration batch-accuracy comparison behind Figure 6.

Run:  python examples/crypto_cnn_digits.py            (scaled-down, ~1 min)
      REPRO_N=600 python examples/crypto_cnn_digits.py  (bigger run)
"""

import os
import random
import time

import numpy as np

from repro.core import CryptoCNNTrainer, CryptoNNConfig, TrustedAuthority
from repro.core.entities import Client
from repro.data import load_synth_digits, one_hot
from repro.nn import SGD, SoftmaxCrossEntropyLoss, build_lenet_small

N_TRAIN = int(os.environ.get("REPRO_N", "200"))
BATCH = 20
EPOCHS = 2


def main() -> None:
    train, test = load_synth_digits(n_train=N_TRAIN, n_test=max(N_TRAIN // 4, 40),
                                    canvas=8, seed=0)
    print(f"dataset: {len(train)} train / {len(test)} test synthetic digits "
          f"(MNIST stand-in, see DESIGN.md)\n")

    # twin models from identical weights
    plain_model = build_lenet_small(np.random.default_rng(0), image_size=8)
    crypto_model = build_lenet_small(np.random.default_rng(1), image_size=8)
    crypto_model.set_weights(plain_model.get_weights())

    # --- plaintext pipeline -------------------------------------------------
    t0 = time.perf_counter()
    plain_hist = plain_model.fit(
        train.x, one_hot(train.y, 10), SoftmaxCrossEntropyLoss(), SGD(0.5),
        epochs=EPOCHS, batch_size=BATCH, rng=np.random.default_rng(2),
    )
    plain_seconds = time.perf_counter() - t0
    plain_acc = plain_model.evaluate(test.x, one_hot(test.y, 10))

    # --- encrypted pipeline ---------------------------------------------------
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
    client = Client(authority)
    t0 = time.perf_counter()
    enc_train = client.encrypt_images(train.x, train.y, num_classes=10,
                                      filter_size=3, stride=1, padding=1)
    enc_test = client.encrypt_images(test.x, test.y, num_classes=10,
                                     filter_size=3, stride=1, padding=1)
    encrypt_seconds = time.perf_counter() - t0
    print(f"client: encrypted {len(train) + len(test)} images "
          f"in {encrypt_seconds:.1f}s")

    trainer = CryptoCNNTrainer(crypto_model, authority)
    t0 = time.perf_counter()
    crypto_hist = trainer.fit(enc_train, SGD(0.5), epochs=EPOCHS,
                              batch_size=BATCH, rng=np.random.default_rng(2))
    crypto_seconds = time.perf_counter() - t0
    crypto_acc = trainer.evaluate(enc_test)

    # --- the Figure 6 comparison ---------------------------------------------
    print("\naverage batch accuracy (windows of 4 batches):")
    print("window   plain   crypto")
    window = 4
    for i in range(0, len(plain_hist.batch_accuracy), window):
        plain_avg = np.mean(plain_hist.batch_accuracy[i:i + window])
        crypto_avg = np.mean(crypto_hist.batch_accuracy[i:i + window])
        print(f"{i // window:6d}   {plain_avg:.3f}   {crypto_avg:.3f}")

    print(f"\ntest accuracy:  plain {plain_acc:.2%}   crypto {crypto_acc:.2%}")
    print(f"training time:  plain {plain_seconds:.1f}s   "
          f"crypto {crypto_seconds:.1f}s "
          f"({crypto_seconds / max(plain_seconds, 1e-9):.0f}x slower; the "
          f"paper saw 57h vs 4h at MNIST scale)")
    print(f"\nserver decrypt counters: {trainer.counters.snapshot()}")


if __name__ == "__main__":
    main()
