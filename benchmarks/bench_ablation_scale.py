"""Ablation: fixed-point scale vs model fidelity.

The paper keeps "two decimal places" (scale 100).  This bench trains the
same encrypted MLP at scale 10 / 100 / 1000 and compares final accuracy
against the plaintext twin, quantifying how much precision the crypto
path can shed before learning degrades.
"""

from __future__ import annotations

import random

import numpy as np

from benchmarks.conftest import series_table, write_report
from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.data.preprocess import one_hot
from repro.data.tabular import load_clinics
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD

SCALES = [10, 100, 1000]


def make_data():
    shard = load_clinics(n_clinics=1, samples_per_clinic=120, n_features=6,
                         seed=5)[0]
    x = np.clip(shard.x / (np.abs(shard.x).max() + 1e-9), -1, 1)
    return x, shard.y


def train_at_scale(scale: int, x, y) -> float:
    config = CryptoNNConfig(scale=scale)
    authority = TrustedAuthority(config, rng=random.Random(0))
    client = Client(authority)
    enc = client.encrypt_tabular(x, y, num_classes=2)
    rng = np.random.default_rng(0)
    model = Sequential([Dense(6, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)])
    trainer = CryptoNNTrainer(model, authority)
    trainer.fit(enc, SGD(0.5), epochs=3, batch_size=20,
                rng=np.random.default_rng(1))
    return trainer.evaluate(enc)


def train_plaintext(x, y) -> float:
    rng = np.random.default_rng(0)
    model = Sequential([Dense(6, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)])
    model.fit(x, one_hot(y, 2), SoftmaxCrossEntropyLoss(), SGD(0.5),
              epochs=3, batch_size=20, rng=np.random.default_rng(1))
    return model.evaluate(x, one_hot(y, 2))


def test_scale_ablation(benchmark):
    x, y = make_data()

    def sweep():
        plain = train_plaintext(x, y)
        return plain, [(s, train_at_scale(s, x, y)) for s in SCALES]

    plain_acc, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [["plaintext", f"{plain_acc:.3f}"]] + [
        [f"scale={s}", f"{acc:.3f}"] for s, acc in results
    ]
    write_report("ablation_fixed_point_scale",
                 series_table(["configuration", "train accuracy"], rows))

    # the paper's scale (100) should be within a few points of plaintext
    acc_100 = dict(results)[100]
    assert abs(acc_100 - plain_acc) < 0.1
    # and more precision should never be much worse
    acc_1000 = dict(results)[1000]
    assert acc_1000 >= acc_100 - 0.1
