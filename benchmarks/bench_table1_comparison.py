"""Table I: qualitative comparison of privacy-preserving ML approaches.

Static taxonomy regenerated from :mod:`repro.core.related_work` so every
table in the paper has a harness entry.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.core.related_work import TABLE_I, format_table_i


def test_table1_regeneration(benchmark):
    text = benchmark(format_table_i)
    write_report("table1_comparison", text.splitlines())
    assert len(TABLE_I) == 8
    assert "CryptoNN" in text
