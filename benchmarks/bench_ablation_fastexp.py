"""Ablation: the fast-exponentiation engine and the persistent pool.

Three measurements isolate the three tentpole optimizations, and one
end-to-end Figure-5-style run shows their combined effect against a
faithful re-creation of the seed implementation (plain ``pow``
everywhere, modular inversion in decrypt, window-shift element
recomputed per dlog query, classic sqrt-sized baby-step table, and a
fresh ``ProcessPoolExecutor`` per parallel call):

* ``pow`` vs :class:`FixedBaseExp` comb tables (encryption's cost);
* per-entry ``pow`` loop vs :func:`multiexp` on signed weight vectors
  (decryption's numerator);
* fresh executor per call vs one persistent :class:`SecureComputePool`;
* seed vs current pipeline on a block of 256-bit secure dot products --
  the acceptance gate asserts the >= 3x wall-clock improvement.
"""

from __future__ import annotations

import math
import pickle
import random
from concurrent.futures import ProcessPoolExecutor
from functools import partial

import numpy as np

from benchmarks.conftest import series_table, write_report
from benchmarks.harness import write_bench_json
from repro.fe.feip import Feip
from repro.matrix.parallel import SecureComputePool, _dot_column
from repro.mathutils.fastexp import FixedBaseExp, multiexp
from repro.mathutils.group import GroupParams, SchnorrGroup
from repro.mathutils.modarith import mod_inverse
from repro.utils.timer import Stopwatch

#: The paper's security parameter; the acceptance criterion is stated at
#: this size, so this bench does not follow the scaled BENCH_BITS.
BITS = 256

VECTOR_LENGTH = 10
VALUE_RANGE = (1, 100)
N_PRODUCTS = 30


# -- seed re-creation ---------------------------------------------------------

class _SeedSolver:
    """BSGS exactly as seeded: sqrt table, shift element per query."""

    def __init__(self, group: SchnorrGroup, bound: int):
        self.group = group
        self.bound = bound
        window = 2 * bound + 1
        self.table_size = max(1, math.isqrt(window - 1) + 1)
        table, element = {}, 1
        for j in range(self.table_size):
            table.setdefault(element, j)
            element = element * group.g % group.p
        self._baby_steps = table
        self._giant_step = pow(group.g, (-self.table_size) % group.q, group.p)
        self._max_giant_steps = (window + self.table_size - 1) // self.table_size

    def solve(self, h: int) -> int:
        group = self.group
        gamma = h * pow(group.g, self.bound % group.q, group.p) % group.p
        for i in range(self._max_giant_steps + 1):
            j = self._baby_steps.get(gamma)
            if j is not None:
                candidate = i * self.table_size + j - self.bound
                if -self.bound <= candidate <= self.bound:
                    return candidate
            gamma = gamma * self._giant_step % group.p
        raise AssertionError("seed solver missed the window")


def _seed_encrypt(params: GroupParams, h: tuple, x: list[int],
                  rng: random.Random):
    p, q, g = params.p, params.q, params.g
    r = rng.randrange(q)
    ct0 = pow(g, r, p)
    ct = tuple(pow(hi, r, p) * pow(g, xi % q, p) % p for hi, xi in zip(h, x))
    return ct0, ct


def _seed_decrypt_raw(params: GroupParams, ct0: int, ct: tuple,
                      y: list[int], sk: int) -> int:
    p, q = params.p, params.q
    numerator = 1
    for ct_i, y_i in zip(ct, y):
        numerator = numerator * pow(ct_i, y_i % q, p) % p
    denominator = pow(ct0, sk % q, p)
    return numerator * mod_inverse(denominator, p) % p


# -- micro ablations ----------------------------------------------------------

def test_pow_vs_fixed_base(benchmark):
    params = GroupParams.predefined(BITS)
    rng = random.Random(1)
    exponents = [rng.randrange(params.q) for _ in range(300)]

    with Stopwatch() as sw_table:
        table = FixedBaseExp(params.g, params.p, params.q)
    with Stopwatch() as sw_pow:
        plain = [pow(params.g, e, params.p) for e in exponents]
    with Stopwatch() as sw_comb:
        comb = [table.pow(e) for e in exponents]
    assert plain == comb
    benchmark.pedantic(lambda: [table.pow(e) for e in exponents],
                       rounds=3, iterations=1)

    speedup = sw_pow.elapsed / max(sw_comb.elapsed, 1e-9)
    write_report("ablation_fastexp_comb", series_table(
        ["method", f"time for {len(exponents)} x {BITS}-bit exps (s)"],
        [["pow", f"{sw_pow.elapsed:.4f}"],
         ["fixed-base comb", f"{sw_comb.elapsed:.4f}"],
         ["one-time table build", f"{sw_table.elapsed:.4f}"],
         ["speedup", f"{speedup:.1f}x"]]))
    write_bench_json(
        "ablation_fastexp_comb",
        {"pow_s": sw_pow.elapsed, "comb_s": sw_comb.elapsed,
         "table_build_s": sw_table.elapsed},
        speedups={"comb_vs_pow": speedup},
        meta={"bits": BITS, "exponentiations": len(exponents)})
    assert sw_comb.elapsed < sw_pow.elapsed


def test_naive_vs_multiexp(benchmark):
    """Signed encoded-weight vectors: the decrypt_raw numerator shape."""
    params = GroupParams.predefined(BITS)
    group = SchnorrGroup(params, rng=random.Random(2))
    rng = random.Random(3)
    batches = [
        (
            [group.random_element() for _ in range(VECTOR_LENGTH)],
            [rng.randrange(-200, 201) for _ in range(VECTOR_LENGTH)],
        )
        for _ in range(40)
    ]

    def naive():
        out = []
        for bases, exps in batches:
            acc = 1
            for b, e in zip(bases, exps):
                acc = acc * pow(b, e % params.q, params.p) % params.p
            out.append(acc)
        return out

    def fast():
        return [multiexp(bases, exps, params.p, order=params.q)
                for bases, exps in batches]

    with Stopwatch() as sw_naive:
        res_naive = naive()
    with Stopwatch() as sw_fast:
        res_fast = fast()
    assert res_naive == res_fast
    benchmark.pedantic(fast, rounds=3, iterations=1)

    speedup = sw_naive.elapsed / max(sw_fast.elapsed, 1e-9)
    write_report("ablation_fastexp_multiexp", series_table(
        ["method", f"time for {len(batches)} signed products (s)"],
        [["per-entry pow", f"{sw_naive.elapsed:.4f}"],
         ["multiexp", f"{sw_fast.elapsed:.4f}"],
         ["speedup", f"{speedup:.1f}x"]]))
    write_bench_json(
        "ablation_fastexp_multiexp",
        {"per_entry_pow_s": sw_naive.elapsed, "multiexp_s": sw_fast.elapsed},
        speedups={"multiexp_vs_pow": speedup},
        meta={"bits": BITS, "products": len(batches),
              "vector_length": VECTOR_LENGTH})
    assert sw_fast.elapsed < sw_naive.elapsed


def test_fresh_vs_persistent_pool():
    """Executor startup + state pickling per call vs one warm pool."""
    params = GroupParams.predefined(64)
    rng = random.Random(4)
    feip = Feip(params, rng=rng)
    mpk, msk = feip.setup(4)
    keys = [feip.key_derive(msk, [rng.randrange(1, 10) for _ in range(4)])]
    columns = [feip.encrypt(mpk, [rng.randrange(1, 10) for _ in range(4)])
               for _ in range(8)]
    bound = 4 * 10 * 10 + 1
    calls = 5

    def fresh_pool_call():
        # what the seed did on *every* secure_dot_parallel invocation
        config = (0, "dot",
                  pickle.dumps((params, mpk, tuple(keys), bound)))
        with ProcessPoolExecutor(max_workers=1) as executor:
            return dict(executor.map(partial(_dot_column, config),
                                     enumerate(columns)))

    with Stopwatch() as sw_fresh:
        fresh = [fresh_pool_call() for _ in range(calls)]
    with SecureComputePool(workers=1) as pool:
        pool.secure_dot(params, mpk, columns, keys, bound)  # warm fork
        with Stopwatch() as sw_persistent:
            persistent = [pool.secure_dot(params, mpk, columns, keys, bound)
                          for _ in range(calls)]
        assert pool.executors_created == 1
    for fresh_result, pooled in zip(fresh, persistent):
        for j, values in fresh_result.items():
            assert values == list(pooled[:, j])

    speedup = sw_fresh.elapsed / max(sw_persistent.elapsed, 1e-9)
    write_report("ablation_fastexp_pool", series_table(
        ["policy", f"time for {calls} parallel dot calls (s)"],
        [["fresh executor per call", f"{sw_fresh.elapsed:.3f}"],
         ["persistent pool", f"{sw_persistent.elapsed:.3f}"],
         ["speedup", f"{speedup:.1f}x"]]))
    write_bench_json(
        "ablation_fastexp_pool",
        {"fresh_executor_s": sw_fresh.elapsed,
         "persistent_pool_s": sw_persistent.elapsed},
        speedups={"persistent_vs_fresh": speedup},
        meta={"bits": 64, "calls": calls})
    assert sw_persistent.elapsed < sw_fresh.elapsed


# -- Figure-5-style acceptance gate -------------------------------------------

def test_fig5_secure_dot_speedup(benchmark):
    """End-to-end block of secure inner products, seed vs current.

    Mirrors one Figure 5 configuration (l=10, values in [1, 100]) at the
    paper's 256-bit parameter: encrypt N_PRODUCTS columns, then decrypt
    them against one weight key, bounded-dlog included.  Per-run state
    (fixed-base tables, baby-step tables) is warmed for BOTH pipelines
    first, exactly as a training run amortizes it.
    """
    params = GroupParams.predefined(BITS)
    lo, hi = VALUE_RANGE
    rng = random.Random(5)
    feip = Feip(params, rng=random.Random(6))
    mpk, msk = feip.setup(VECTOR_LENGTH)
    columns = [[rng.randrange(lo, hi + 1) for _ in range(VECTOR_LENGTH)]
               for _ in range(N_PRODUCTS)]
    y = [rng.randrange(lo, hi + 1) for _ in range(VECTOR_LENGTH)]
    key = feip.key_derive(msk, y)
    bound = VECTOR_LENGTH * hi * hi + 1
    expected = [sum(a * b for a, b in zip(col, y)) for col in columns]

    enc_rng = random.Random(7)

    def seed_pipeline():
        cts = [_seed_encrypt(params, mpk.h, col, enc_rng) for col in columns]
        solver = seed_solver  # table cached across iterations, as seeded
        return [
            solver.solve(_seed_decrypt_raw(params, ct0, ct, list(key.y),
                                           key.sk))
            for ct0, ct in cts
        ]

    def current_pipeline():
        cts = [feip.encrypt(mpk, col) for col in columns]
        solver = feip.solver_for(bound)
        return [solver.solve(feip.decrypt_raw(mpk, ct, key)) for ct in cts]

    # warm per-run state for both sides (solver tables, comb tables)
    seed_solver = _SeedSolver(feip.group, bound)
    assert seed_pipeline() == expected
    assert current_pipeline() == expected

    rounds = 3
    with Stopwatch() as sw_seed:
        for _ in range(rounds):
            seed_pipeline()
    with Stopwatch() as sw_current:
        for _ in range(rounds):
            current_pipeline()
    benchmark.pedantic(current_pipeline, rounds=1, iterations=1)

    speedup = sw_seed.elapsed / max(sw_current.elapsed, 1e-9)
    write_report("ablation_fastexp_fig5", series_table(
        ["pipeline",
         f"time for {rounds} x {N_PRODUCTS} dot products, l={VECTOR_LENGTH},"
         f" {BITS}-bit (s)"],
        [["seed (pow + inversion + sqrt-table dlog)",
          f"{sw_seed.elapsed:.3f}"],
         ["fastexp (comb + multiexp + dense-table dlog)",
          f"{sw_current.elapsed:.3f}"],
         ["speedup", f"{speedup:.2f}x"]]))
    write_bench_json(
        "ablation_fastexp_fig5",
        {"seed_pipeline_s": sw_seed.elapsed,
         "current_pipeline_s": sw_current.elapsed},
        speedups={"current_vs_seed": speedup},
        meta={"bits": BITS, "rounds": rounds, "products": N_PRODUCTS,
              "vector_length": VECTOR_LENGTH, "gate": 3.0})
    assert speedup >= 3.0, f"expected >= 3x, measured {speedup:.2f}x"
