"""Ablation: BSGS (table-based) vs Pollard kangaroo (memoryless) dlogs.

BSGS amortizes a baby-step table over many queries of the same bound --
the training workload.  Kangaroo uses O(log) memory, attractive for
one-shot queries with very large windows.  This bench measures both on
the same batch of bounded dlog instances.
"""

from __future__ import annotations

import random

from benchmarks.conftest import series_table, write_report
from repro.mathutils.dlog import DlogSolver
from repro.mathutils.group import SchnorrGroup
from repro.mathutils.kangaroo import KangarooSolver
from repro.utils.timer import Stopwatch

BOUND = 1 << 16
QUERIES = 60


def test_bsgs_vs_kangaroo(benchmark, bench_params):
    rng = random.Random(5)
    group = SchnorrGroup(bench_params, rng=rng)
    exponents = [rng.randrange(-BOUND, BOUND + 1) for _ in range(QUERIES)]
    targets = [group.gexp(m) for m in exponents]

    bsgs = DlogSolver(group, BOUND)
    kangaroo = KangarooSolver(group, BOUND)

    with Stopwatch() as sw_build:
        DlogSolver(group, BOUND)  # isolate table-build cost
    with Stopwatch() as sw_bsgs:
        res_bsgs = [bsgs.solve(t) for t in targets]
    with Stopwatch() as sw_kangaroo:
        res_kangaroo = [kangaroo.solve(t) for t in targets]
    assert res_bsgs == res_kangaroo == exponents

    benchmark.pedantic(lambda: [bsgs.solve(t) for t in targets],
                       rounds=3, iterations=1)

    rows = [
        ["BSGS table build (once)", f"{sw_build.elapsed:.3f}"],
        [f"BSGS {QUERIES} queries (table reused)", f"{sw_bsgs.elapsed:.3f}"],
        [f"kangaroo {QUERIES} queries (no table)", f"{sw_kangaroo.elapsed:.3f}"],
        ["memory", f"BSGS ~{bsgs.table_size} elems vs kangaroo O(log)"],
    ]
    write_report("ablation_kangaroo",
                 series_table(["configuration", "seconds"], rows))

    # with the table amortized, BSGS queries must beat kangaroo walks
    assert sw_bsgs.elapsed < sw_kangaroo.elapsed
