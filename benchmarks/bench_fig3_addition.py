"""Figure 3: time cost of element-wise ADDITION in secure matrix computation.

Panels: (a) pre-processing for encryption, (b) pre-processing for the
function key, (c) serial secure addition, (d) parallelized secure
addition -- swept over element count for three value ranges.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    ELEMENTWISE_COUNTS,
    VALUE_RANGES,
    random_int_matrix,
    series_table,
    write_report,
)
from benchmarks.harness import measure_elementwise
from repro.matrix.secure_matrix import SecureMatrixScheme, matrix_bound_elementwise
from repro.mathutils.dlog import SolverCache


@pytest.fixture()
def scheme(bench_params, bench_rng):
    s = SecureMatrixScheme(bench_params, rng=bench_rng,
                           solver_cache=SolverCache())
    return s


def test_febo_encrypt_row(benchmark, scheme, bench_rng):
    """Panel (a) unit op: FEBO-encrypting one 100-element row."""
    scheme.setup(column_length=1)
    x = random_int_matrix(bench_rng, 1, 100, (-100, 100))
    benchmark(lambda: scheme.pre_process_encryption(x, with_feip=False))


def test_febo_key_derive_row(benchmark, scheme, bench_rng):
    """Panel (b) unit op: deriving 100 addition keys."""
    _, msk_bo = scheme.setup(column_length=1)
    x = random_int_matrix(bench_rng, 1, 100, (-100, 100))
    y = random_int_matrix(bench_rng, 1, 100, (-100, 100))
    enc = scheme.pre_process_encryption(x, with_feip=False)
    benchmark(lambda: scheme.derive_elementwise_keys(msk_bo, "+", y,
                                                     enc.commitments()))


def test_secure_addition_row(benchmark, scheme, bench_rng):
    """Panel (c) unit op: 100 secure additions (serial)."""
    _, msk_bo = scheme.setup(column_length=1)
    x = random_int_matrix(bench_rng, 1, 100, (-100, 100))
    y = random_int_matrix(bench_rng, 1, 100, (-100, 100))
    enc = scheme.pre_process_encryption(x, with_feip=False)
    keys = scheme.derive_elementwise_keys(msk_bo, "+", y, enc.commitments())
    bound = matrix_bound_elementwise("+", 100, 100)
    benchmark(lambda: scheme.secure_elementwise(enc, keys, bound))


def test_fig3_series(benchmark, bench_params):
    """Full Figure 3 sweep; writes benchmarks/results/fig3_addition.txt."""

    def sweep():
        points = []
        for value_range in VALUE_RANGES:
            for count in ELEMENTWISE_COUNTS:
                points.append(
                    measure_elementwise(bench_params, "+", count, value_range)
                )
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [str(p.value_range), str(p.count), f"{p.encrypt_s * 1e3:.1f}",
         f"{p.key_derive_s * 1e3:.1f}", f"{p.secure_s:.3f}",
         f"{p.parallel_s:.3f}"]
        for p in points
    ]
    write_report("fig3_addition", series_table(
        ["range", "#add", "enc (ms)", "keyder (ms)", "secure (s)",
         "parallel (s)"], rows))
    # paper shape assertions: linear growth, parallel speedup on the
    # largest size
    largest = [p for p in points if p.count == ELEMENTWISE_COUNTS[-1]]
    smallest = [p for p in points if p.count == ELEMENTWISE_COUNTS[0]]
    ratio = ELEMENTWISE_COUNTS[-1] / ELEMENTWISE_COUNTS[0]
    for big, small in zip(largest, smallest):
        assert big.encrypt_s > small.encrypt_s
        assert big.secure_s / max(small.secure_s, 1e-9) > ratio / 4
