"""Figure 6 + Table III: plain LeNet-style CNN vs CryptoCNN.

Figure 6 plots average batch accuracy per iteration window for both
pipelines; Table III reports per-epoch test accuracy and total training
time.  Both come from one twin-training run (shared initial weights and
batch order), reproduced here on the synthetic digit dataset at reduced
scale (see DESIGN.md substitution notes; REPRO_FULL=1 enlarges).

Expected shapes relative to the paper:

* the two accuracy curves track each other closely (paper: 93.04% vs
  93.12% after epoch 1) -- the crypto path does not change learning;
* crypto training time exceeds plaintext training time by a large
  constant factor (paper: 57h vs 4h ~ 14x).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks.conftest import FULL_SCALE, series_table, write_report
from benchmarks.harness import TrainingComparison, run_training_comparison

# module-level cache: fig6 and table3 share one twin-training run
_COMPARISON: TrainingComparison | None = None


def get_comparison() -> TrainingComparison:
    global _COMPARISON
    if _COMPARISON is None:
        if FULL_SCALE:
            _COMPARISON = run_training_comparison(
                n_train=4000, n_test=1000, canvas=12, batch_size=64,
                epochs=2, window=10,
            )
        else:
            _COMPARISON = run_training_comparison(
                n_train=600, n_test=200, canvas=8, batch_size=25,
                epochs=2, window=4,
            )
    return _COMPARISON


def test_fig6_average_batch_accuracy(benchmark):
    """Regenerates Figure 6's two series."""
    comparison = benchmark.pedantic(get_comparison, rounds=1, iterations=1)
    plain = comparison.averaged(comparison.plain_batch_accuracy)
    crypto = comparison.averaged(comparison.crypto_batch_accuracy)
    rows = [
        [str(i), f"{p:.3f}", f"{c:.3f}"]
        for i, (p, c) in enumerate(zip(plain, crypto))
    ]
    write_report("fig6_batch_accuracy", series_table(
        [f"window({comparison.window} batches)", "LeNet (plain)",
         "CryptoCNN"], rows))

    # shape assertions: both curves rise, and they track each other
    assert crypto[-1] > crypto[0]
    assert plain[-1] > plain[0]
    gap = max(abs(p - c) for p, c in zip(plain, crypto))
    assert gap < 0.25, f"accuracy curves diverged by {gap:.3f}"


def test_table3_accuracy_and_training_time(benchmark):
    """Regenerates Table III's rows."""
    comparison = benchmark.pedantic(get_comparison, rounds=1, iterations=1)
    rows = [
        ["LeNet (plain)",
         *(f"{a:.2%}" for a in comparison.plain_epoch_test_accuracy),
         f"{comparison.plain_train_s:.1f}s"],
        ["CryptoCNN",
         *(f"{a:.2%}" for a in comparison.crypto_epoch_test_accuracy),
         f"{comparison.crypto_train_s:.1f}s"],
    ]
    header = ["model"] + [f"epoch {i + 1} (acc)"
                          for i in range(comparison.epochs)] + ["train time"]
    extra = [
        "",
        f"(client-side encryption took {comparison.encrypt_s:.1f}s; "
        f"crypto/plain time ratio = "
        f"{comparison.crypto_train_s / max(comparison.plain_train_s, 1e-9):.0f}x; "
        f"paper reported 57h/4h ~ 14x at MNIST scale)",
    ]
    write_report("table3_training", series_table(header, rows) + extra)

    # Table III shape: accuracies within a few points of each other,
    # crypto much slower
    for plain_acc, crypto_acc in zip(comparison.plain_epoch_test_accuracy,
                                     comparison.crypto_epoch_test_accuracy):
        assert abs(plain_acc - crypto_acc) < 0.15
    assert comparison.crypto_train_s > 3 * comparison.plain_train_s
    # epoch 2 should not be worse than epoch 1 by much (training converges)
    assert comparison.crypto_epoch_test_accuracy[-1] > 0.5
