"""Authority key-service throughput over the real transport.

Measures derived keys per second against a live
:class:`~repro.rpc.authority_service.AuthorityService` on a loopback
socket, comparing the unbatched shape (one framed request per weight
row -- the per-message fan-out the paper's Section IV-B2 formula
counts) against the batched envelope (all rows of an iteration in one
round trip, the repro.rpc default).

The derivation work is identical in both shapes; the gap is pure
round-trip and framing overhead, which is exactly what key-request
batching exists to amortize.
"""

from __future__ import annotations

import random
import time

from benchmarks.conftest import FULL_SCALE, series_table, write_report
from repro.core.config import CryptoNNConfig
from repro.core.entities import TrustedAuthority
from repro.rpc import AuthorityService, RemoteAuthority, ServiceThread

#: Weight rows per "iteration" (first-layer units of a mid-size model).
ROWS_PER_ITER = 16
#: Vector length of each row (features).
ETA = 8
#: Iterations measured per shape.
ITERATIONS = 40 if FULL_SCALE else 10


def _measure(remote: RemoteAuthority, batched: bool,
             rng: random.Random) -> tuple[float, int]:
    """Return (seconds, keys derived) for ITERATIONS iterations."""
    rows_per_iter = [
        [[rng.randrange(-200, 201) for _ in range(ETA)]
         for _ in range(ROWS_PER_ITER)]
        for _ in range(ITERATIONS)
    ]
    keys = 0
    start = time.perf_counter()
    for rows in rows_per_iter:
        if batched:
            keys += len(remote.derive_feip_keys_batch(rows))
        else:
            for row in rows:  # one framed round trip per row
                keys += len(remote.derive_feip_keys([row]))
    return time.perf_counter() - start, keys


def test_rpc_key_throughput(benchmark):
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(0))
    thread = ServiceThread(AuthorityService(authority))
    host, port = thread.start()
    try:
        remote = RemoteAuthority(host, port, name="server")
        try:
            rng = random.Random(20190419)
            _measure(remote, True, rng)  # warm up tables + connection
            unbatched_s, unbatched_keys = _measure(remote, False, rng)
            batched_s, batched_keys = benchmark.pedantic(
                _measure, args=(remote, True, rng), rounds=1, iterations=1)
        finally:
            remote.close()
    finally:
        thread.stop()

    unbatched_rate = unbatched_keys / unbatched_s
    batched_rate = batched_keys / batched_s
    rows = [
        ["round trips / iteration (unbatched)", str(ROWS_PER_ITER)],
        ["round trips / iteration (batched)", "1"],
        ["keys/s (unbatched)", f"{unbatched_rate:,.0f}"],
        ["keys/s (batched)", f"{batched_rate:,.0f}"],
        ["speedup", f"{batched_rate / unbatched_rate:.2f}x"],
    ]
    write_report("rpc_key_throughput",
                 series_table(["quantity", "value"], rows))

    # collapsing 16 round trips into 1 must not be slower; in practice
    # it is several times faster even on loopback
    assert batched_rate > unbatched_rate
