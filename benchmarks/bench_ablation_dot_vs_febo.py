"""Ablation: dedicated FEIP dot-product vs element-wise-FEBO emulation.

The paper separates secure dot-product from element-wise multiplication
"due to efficiency considerations" (Section III-C).  This bench
quantifies that choice: computing a length-l inner product as one FEIP
decrypt vs l FEBO multiply-decrypts plus a plaintext sum.
"""

from __future__ import annotations

import random

import numpy as np

from benchmarks.conftest import series_table, write_report
from repro.matrix.secure_matrix import (
    SecureMatrixScheme,
    matrix_bound_dot,
    matrix_bound_elementwise,
)
from repro.mathutils.dlog import SolverCache
from repro.utils.timer import Stopwatch

LENGTHS = [10, 50, 100]
COUNT = 20  # inner products per measurement
VALUE_RANGE = (1, 10)


def measure(bench_params, vector_length: int):
    rng = random.Random(3)
    scheme = SecureMatrixScheme(bench_params, rng=rng,
                                solver_cache=SolverCache())
    msk_ip, msk_bo = scheme.setup(column_length=vector_length)
    lo, hi = VALUE_RANGE
    x = np.array([[rng.randrange(lo, hi + 1) for _ in range(COUNT)]
                  for _ in range(vector_length)], dtype=object)
    y_vec = [rng.randrange(lo, hi + 1) for _ in range(vector_length)]
    enc = scheme.pre_process_encryption(x)

    # dedicated FEIP dot product
    keys_ip = scheme.derive_dot_keys(msk_ip, [y_vec])
    bound_ip = matrix_bound_dot(hi, hi, vector_length)
    with Stopwatch() as sw_ip:
        z_ip = scheme.secure_dot(enc, keys_ip, bound_ip)

    # FEBO emulation: element-wise products, summed in plaintext
    y_matrix = np.array([[y_vec[i] for _ in range(COUNT)]
                         for i in range(vector_length)], dtype=object)
    keys_bo = scheme.derive_elementwise_keys(msk_bo, "*", y_matrix,
                                             enc.commitments())
    bound_bo = matrix_bound_elementwise("*", hi, hi)
    with Stopwatch() as sw_bo:
        products = scheme.secure_elementwise(enc, keys_bo, bound_bo)
        z_bo = products.sum(axis=0)[np.newaxis, :]

    assert (z_ip == z_bo).all(), "the two methods disagree"
    return sw_ip.elapsed, sw_bo.elapsed


def test_dot_vs_febo_emulation(benchmark, bench_params):
    def sweep():
        return [(l, *measure(bench_params, l)) for l in LENGTHS]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [str(l), f"{ip:.3f}", f"{bo:.3f}", f"{bo / max(ip, 1e-9):.1f}x"]
        for l, ip, bo in results
    ]
    write_report("ablation_dot_vs_febo", series_table(
        ["l", "FEIP dot (s)", "FEBO emulation (s)", "slowdown"], rows))

    # the dedicated dot product must win, increasingly so with length
    for l, ip, bo in results:
        assert bo > ip, f"FEBO emulation unexpectedly faster at l={l}"
