"""Diff two machine-readable bench results (``BENCH_*.json``).

Every ablation bench emits numbers + speedup ratios via
:func:`benchmarks.harness.write_bench_json`; CI uploads them as
artifacts per run.  This tool makes the perf trajectory reviewable
PR-over-PR without rerunning anything::

    python benchmarks/compare_benches.py old/BENCH_ablation_batchdot.json \
        new/BENCH_ablation_batchdot.json

prints, per raw measurement and per speedup ratio, the old value, the
new value and the relative delta.  Pass ``--fail-drop PCT`` to exit
non-zero when any speedup ratio regressed by more than PCT percent --
the hook for a perf gate in CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_bench(path: str | pathlib.Path) -> dict:
    payload = json.loads(pathlib.Path(path).read_text())
    for section in ("numbers", "speedups", "meta"):
        payload.setdefault(section, {})
    return payload


def _delta_pct(old: float, new: float) -> float | None:
    if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
        return None
    if old == 0:
        return None
    return (new - old) / abs(old) * 100.0


def compare(old: dict, new: dict) -> list[tuple[str, str, object, object,
                                                float | None]]:
    """Return ``(section, key, old, new, delta_pct)`` rows, speedups first."""
    rows = []
    for section in ("speedups", "numbers"):
        keys = sorted(set(old[section]) | set(new[section]))
        for key in keys:
            a, b = old[section].get(key), new[section].get(key)
            rows.append((section, key, a, b, _delta_pct(a, b)
                         if a is not None and b is not None else None))
    return rows


def format_rows(rows, old_name: str, new_name: str) -> list[str]:
    header = ["metric", old_name, new_name, "delta"]
    table = []
    for section, key, a, b, delta in rows:
        fmt = (lambda v: "-" if v is None
               else f"{v:.3f}" if isinstance(v, float) else str(v))
        delta_s = "-" if delta is None else f"{delta:+.1f}%"
        table.append([f"{section}.{key}", fmt(a), fmt(b), delta_s])
    widths = [max(len(header[c]), *(len(r[c]) for r in table))
              for c in range(4)] if table else [len(h) for h in header]

    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    return [line(header), line(["-" * w for w in widths])] + \
        [line(r) for r in table]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json files and print speedup deltas")
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--fail-drop", type=float, metavar="PCT",
                        default=None,
                        help="exit 1 if any speedup ratio dropped by more "
                             "than PCT percent")
    args = parser.parse_args(argv)
    old, new = load_bench(args.old), load_bench(args.new)
    if old.get("bench") != new.get("bench"):
        print(f"note: comparing different benches "
              f"({old.get('bench')!r} vs {new.get('bench')!r})")
    rows = compare(old, new)
    print(f"bench: {new.get('bench')}")
    if old["meta"] != new["meta"]:
        print(f"note: configs differ: {old['meta']} vs {new['meta']}")
    for line in format_rows(rows, "old", "new"):
        print(line)
    if args.fail_drop is not None:
        regressed = [
            (key, delta) for section, key, _, _, delta in rows
            if section == "speedups" and delta is not None
            and delta < -abs(args.fail_drop)
        ]
        if regressed:
            for key, delta in regressed:
                print(f"REGRESSION: speedups.{key} dropped {delta:+.1f}% "
                      f"(allowed -{abs(args.fail_drop):.1f}%)")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
