"""Shared benchmark infrastructure.

Every figure/table of the paper's evaluation section has a bench module
here (see DESIGN.md experiment index).  Default sizes are scaled down so
``pytest benchmarks/ --benchmark-only`` completes in minutes on a laptop;
set ``REPRO_FULL=1`` to run at paper scale (element counts in the
thousands, 2 full epochs -- expect hours, as the paper's own Table III
did).

Reports are printed and also written to ``benchmarks/results/*.txt`` so
the series survive pytest's output capture.
"""

from __future__ import annotations

import os
import pathlib
import random

import numpy as np
import pytest

from repro.mathutils.group import GroupParams

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL_SCALE = bool(int(os.environ.get("REPRO_FULL", "0")))

#: Group size used by the secure-computation benches.  The paper used a
#: 256-bit security parameter; the scaled default uses 64-bit so the
#: shape experiments finish quickly.  REPRO_FULL switches to 256.
BENCH_BITS = 256 if FULL_SCALE else 64

#: Element counts for Figures 3/4 (paper: 2k..10k).
ELEMENTWISE_COUNTS = [2000, 4000, 6000, 8000, 10000] if FULL_SCALE else \
    [200, 400, 600, 800, 1000]

#: Dot-product counts for Figure 5 (paper: 2k..10k inner products).
DOT_COUNTS = [2000, 4000, 6000, 8000, 10000] if FULL_SCALE else \
    [100, 200, 300, 400, 500]

#: Value ranges appearing in the Figure 3/4 legends.
VALUE_RANGES = [(-10, 10), (-100, 100), (-1000, 1000)]

#: (vector length, value range) combos from the Figure 5 legend.
DOT_CONFIGS = [(10, (1, 10)), (10, (1, 100)), (100, (1, 10)), (100, (1, 100))]


@pytest.fixture(scope="session")
def bench_params() -> GroupParams:
    return GroupParams.predefined(BENCH_BITS)


@pytest.fixture()
def bench_rng() -> random.Random:
    return random.Random(20190419)


def random_int_matrix(rng: random.Random, rows: int, cols: int,
                      value_range: tuple[int, int]) -> np.ndarray:
    lo, hi = value_range
    return np.array(
        [[rng.randrange(lo, hi + 1) for _ in range(cols)] for _ in range(rows)],
        dtype=object,
    )


def write_report(name: str, lines: list[str]) -> None:
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n===== {name} =====\n{text}\n")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def series_table(header: list[str], rows: list[list[str]]) -> list[str]:
    widths = [max(len(header[c]), *(len(r[c]) for r in rows))
              for c in range(len(header))]
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    return [fmt(header), fmt(["-" * w for w in widths])] + [fmt(r) for r in rows]
