"""Ablation: the offline/online encryption split (client-side twin of
``bench_ablation_fastexp``).

The seed client pays ``1 + eta`` full-width exponentiations per FEIP
encryption *online* (``g^r`` and every ``h_i^r``), one per matrix
element.  The :class:`~repro.fe.engine.EncryptionEngine` moves that
cost into an offline phase of precomputed nonce tuples, leaving the
online phase one small-exponent ``g^{x_i}`` plus one multiply per
element.  Three measurements:

* **online-phase latency** -- seed serial encrypt vs engine consuming
  banked tuples, on a 256-bit batch.  The acceptance gate asserts the
  >= 3x wall-clock improvement (measured: far higher -- the online
  phase does asymptotically less work).
* **offline production** -- what banking the same number of tuples
  costs (serial vs pool-parallel bulk), i.e. the work that moved off
  the critical path.
* **pool-parallel bulk throughput** -- end-to-end batch encryption
  through ``secure_encrypt_columns`` (workers own the nonces), the
  ``client-upload --workers N`` path.

Every number also lands in ``results/BENCH_ablation_encrypt.json`` via
:func:`benchmarks.harness.write_bench_json`.
"""

from __future__ import annotations

import random

from benchmarks.conftest import series_table, write_report
from benchmarks.harness import write_bench_json
from repro.fe.engine import EncryptionEngine
from repro.fe.feip import Feip
from repro.matrix.parallel import SecureComputePool
from repro.mathutils.group import GroupParams
from repro.utils.timer import Stopwatch

#: The paper's security parameter; the acceptance criterion is stated
#: at this size, so this bench does not follow the scaled BENCH_BITS.
BITS = 256

VECTOR_LENGTH = 10
VALUE_RANGE = (1, 100)
N_VECTORS = 30


def _seed_encrypt(params: GroupParams, h: tuple, x: list[int],
                  rng: random.Random):
    """FEIP encryption exactly as seeded: plain ``pow`` everywhere."""
    p, q, g = params.p, params.q, params.g
    r = rng.randrange(q)
    ct0 = pow(g, r, p)
    ct = tuple(pow(hi, r, p) * pow(g, xi % q, p) % p for hi, xi in zip(h, x))
    return ct0, ct


def test_offline_online_encrypt_speedup(benchmark):
    """Online-phase latency vs seed serial encrypt: the >= 3x gate."""
    params = GroupParams.predefined(BITS)
    rng = random.Random(11)
    feip = Feip(params, rng=random.Random(12))
    mpk, msk = feip.setup(VECTOR_LENGTH)
    lo, hi = VALUE_RANGE
    columns = [[rng.randrange(lo, hi + 1) for _ in range(VECTOR_LENGTH)]
               for _ in range(N_VECTORS)]
    key = feip.key_derive(msk, [1] * VECTOR_LENGTH)
    bound = VECTOR_LENGTH * hi + 1
    expected = [sum(col) for col in columns]

    engine = EncryptionEngine(params, rng=random.Random(13))
    enc_rng = random.Random(14)

    # warm the comb tables both sides use, then verify correctness once
    seed_cts = [_seed_encrypt(params, mpk.h, col, enc_rng)
                for col in columns]
    engine.prefill_feip(mpk, N_VECTORS)
    warm = [engine.encrypt_feip(mpk, col) for col in columns]
    solver = feip.solver_for(bound)
    assert [solver.solve(feip.decrypt_raw(mpk, ct, key))
            for ct in warm] == expected
    del seed_cts, warm

    rounds = 3
    with Stopwatch() as sw_seed:
        for _ in range(rounds):
            [_seed_encrypt(params, mpk.h, col, enc_rng) for col in columns]

    # offline phase (untimed against the gate, reported separately)
    with Stopwatch() as sw_offline:
        engine.prefill_feip(mpk, rounds * N_VECTORS)
    assert engine.available_feip(mpk) == rounds * N_VECTORS

    with Stopwatch() as sw_online:
        for _ in range(rounds):
            cts = [engine.encrypt_feip(mpk, col) for col in columns]
    assert engine.misses == 0
    assert [solver.solve(feip.decrypt_raw(mpk, ct, key))
            for ct in cts] == expected

    engine.prefill_feip(mpk, N_VECTORS)
    benchmark.pedantic(
        lambda: [engine.encrypt_feip(mpk, col) for col in columns],
        rounds=1, iterations=1)

    speedup = sw_seed.elapsed / max(sw_online.elapsed, 1e-9)
    write_report("ablation_encrypt_online", series_table(
        ["phase",
         f"time for {rounds} x {N_VECTORS} encryptions, l={VECTOR_LENGTH},"
         f" {BITS}-bit (s)"],
        [["seed serial encrypt (pow, all online)", f"{sw_seed.elapsed:.3f}"],
         ["engine online phase (banked nonces)", f"{sw_online.elapsed:.4f}"],
         ["offline tuple production (serial)", f"{sw_offline.elapsed:.3f}"],
         ["online speedup", f"{speedup:.1f}x"]]))
    write_bench_json(
        "ablation_encrypt",
        {"seed_serial_s": sw_seed.elapsed,
         "engine_online_s": sw_online.elapsed,
         "offline_serial_s": sw_offline.elapsed},
        speedups={"online_vs_seed": speedup},
        meta={"bits": BITS, "rounds": rounds, "vectors": N_VECTORS,
              "vector_length": VECTOR_LENGTH, "gate": 3.0})
    assert speedup >= 3.0, f"expected >= 3x, measured {speedup:.2f}x"


def test_pool_bulk_encrypt_throughput():
    """Pool-parallel bulk encryption: correctness plus measured throughput.

    On a 1-core container the pool cannot beat serial wall-clock (the
    win is on multi-core clients), so this measures and reports both
    paths but only gates correctness: pool ciphertexts decrypt to the
    same values, and every nonce is distinct.
    """
    params = GroupParams.predefined(BITS)
    rng = random.Random(21)
    feip = Feip(params, rng=random.Random(22))
    mpk, msk = feip.setup(VECTOR_LENGTH)
    lo, hi = VALUE_RANGE
    columns = [[rng.randrange(lo, hi + 1) for _ in range(VECTOR_LENGTH)]
               for _ in range(N_VECTORS)]
    key = feip.key_derive(msk, [1] * VECTOR_LENGTH)
    bound = VECTOR_LENGTH * hi + 1
    expected = [sum(col) for col in columns]
    solver = feip.solver_for(bound)

    serial_engine = EncryptionEngine(params, rng=random.Random(23))
    with Stopwatch() as sw_serial:
        serial_cts = serial_engine.encrypt_feip_columns(mpk, columns)

    with SecureComputePool(workers=2) as pool:
        pool_engine = EncryptionEngine(params, pool=pool)
        pool_engine.encrypt_feip_columns(mpk, columns[:2])  # warm fork
        with Stopwatch() as sw_pool:
            pool_cts = pool_engine.encrypt_feip_columns(mpk, columns)
        with Stopwatch() as sw_offline_pool:
            nonces, _ = pool.precompute_encryption(
                params, feip_mpk=mpk, feip_count=N_VECTORS)

    for cts in (serial_cts, pool_cts):
        assert [solver.solve(feip.decrypt_raw(mpk, ct, key))
                for ct in cts] == expected
    all_ct0 = [ct.ct0 for ct in serial_cts + pool_cts] + \
        [n.ct0 for n in nonces]
    assert len(set(all_ct0)) == len(all_ct0), "nonce reuse across paths"

    write_report("ablation_encrypt_pool", series_table(
        ["path", f"time for {N_VECTORS} encryptions, {BITS}-bit (s)"],
        [["serial engine (no bank)", f"{sw_serial.elapsed:.3f}"],
         ["pool bulk (2 workers)", f"{sw_pool.elapsed:.3f}"],
         ["pool offline production", f"{sw_offline_pool.elapsed:.3f}"]]))
    write_bench_json(
        "ablation_encrypt_pool",
        {"serial_bulk_s": sw_serial.elapsed,
         "pool_bulk_s": sw_pool.elapsed,
         "pool_offline_s": sw_offline_pool.elapsed},
        speedups={"pool_vs_serial": sw_serial.elapsed /
                  max(sw_pool.elapsed, 1e-9)},
        meta={"bits": BITS, "vectors": N_VECTORS, "workers": 2,
              "vector_length": VECTOR_LENGTH})
