"""Figure 5: time cost of DOT-PRODUCT in secure matrix computation.

Panels: (a) encryption, (b) function-key derivation, (c) serial secure
dot product, (d) parallelized -- for vector lengths l in {10, 100} and
value ranges [1,10], [1,100].
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    DOT_CONFIGS,
    DOT_COUNTS,
    random_int_matrix,
    series_table,
    write_report,
)
from benchmarks.harness import measure_dot
from repro.matrix.secure_matrix import SecureMatrixScheme, matrix_bound_dot
from repro.mathutils.dlog import SolverCache


@pytest.fixture()
def scheme(bench_params, bench_rng):
    return SecureMatrixScheme(bench_params, rng=bench_rng,
                              solver_cache=SolverCache())


def test_feip_encrypt_columns(benchmark, scheme, bench_rng):
    """Panel (a) unit op: encrypting 50 columns of length 10."""
    scheme.setup(column_length=10)
    x = random_int_matrix(bench_rng, 10, 50, (1, 100))
    benchmark(lambda: scheme.pre_process_encryption(x, with_febo=False))


def test_feip_key_derive(benchmark, scheme, bench_rng):
    """Panel (b) unit op: deriving 10 keys of length 100."""
    msk_ip, _ = scheme.setup(column_length=100)
    y = random_int_matrix(bench_rng, 10, 100, (1, 100))
    benchmark(lambda: scheme.derive_dot_keys(msk_ip, y))


def test_secure_dot_block(benchmark, scheme, bench_rng):
    """Panel (c) unit op: 50 inner products of length 10 (serial)."""
    msk_ip, _ = scheme.setup(column_length=10)
    x = random_int_matrix(bench_rng, 10, 50, (1, 10))
    y = random_int_matrix(bench_rng, 1, 10, (1, 10))
    enc = scheme.pre_process_encryption(x, with_febo=False)
    keys = scheme.derive_dot_keys(msk_ip, y)
    bound = matrix_bound_dot(10, 10, 10)
    benchmark(lambda: scheme.secure_dot(enc, keys, bound))


def test_fig5_series(benchmark, bench_params):
    """Full Figure 5 sweep; writes benchmarks/results/fig5_dotproduct.txt."""

    def sweep():
        points = []
        for vector_length, value_range in DOT_CONFIGS:
            for count in DOT_COUNTS:
                points.append(
                    measure_dot(bench_params, vector_length, count, value_range)
                )
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"l={p.vector_length}", f"v={p.value_range}", str(p.count),
         f"{p.encrypt_s:.3f}", f"{p.key_derive_s * 1e3:.1f}",
         f"{p.secure_s:.3f}", f"{p.parallel_s:.3f}"]
        for p in points
    ]
    write_report("fig5_dotproduct", series_table(
        ["l", "range", "#dot", "enc (s)", "keyder (ms)", "secure (s)",
         "parallel (s)"], rows))

    # paper shape: l=100 encryption costs ~10x the l=10 one at equal count
    count = DOT_COUNTS[-1]
    l10 = next(p for p in points
               if p.count == count and p.vector_length == 10
               and p.value_range == (1, 10))
    l100 = next(p for p in points
                if p.count == count and p.vector_length == 100
                and p.value_range == (1, 10))
    assert l100.encrypt_s > 3 * l10.encrypt_s
    assert l100.secure_s > l10.secure_s
