"""Ablation: cached baby-step table vs fresh-per-decrypt discrete logs.

DESIGN.md calls out the solver cache as a key implementation choice: the
baby-step table construction dominates a single bounded dlog, but
training reuses the same bound thousands of times.  This bench measures
both policies on a batch of decryptions.
"""

from __future__ import annotations

import random

from benchmarks.conftest import series_table, write_report
from repro.fe.feip import Feip
from repro.mathutils.dlog import DlogSolver
from repro.utils.timer import Stopwatch

BATCH = 200
BOUND = 1 << 20


def test_dlog_cache_ablation(benchmark, bench_params):
    rng = random.Random(9)
    feip = Feip(bench_params, rng=rng)
    mpk, msk = feip.setup(4)
    key = feip.key_derive(msk, [3, 1, 4, 1])
    cts = [feip.encrypt(mpk, [rng.randrange(-50, 51) for _ in range(4)])
           for _ in range(BATCH)]
    elements = [feip.decrypt_raw(mpk, ct, key) for ct in cts]

    def cached():
        solver = DlogSolver(feip.group, BOUND)
        return [solver.solve(e) for e in elements]

    def uncached():
        return [DlogSolver(feip.group, BOUND).solve(e) for e in elements]

    with Stopwatch() as sw_cached:
        res_cached = cached()
    with Stopwatch() as sw_uncached:
        res_uncached = uncached()
    assert res_cached == res_uncached

    benchmark.pedantic(cached, rounds=3, iterations=1)

    speedup = sw_uncached.elapsed / max(sw_cached.elapsed, 1e-9)
    write_report("ablation_dlog_cache", series_table(
        ["policy", f"time for {BATCH} dlogs (s)"],
        [["shared table", f"{sw_cached.elapsed:.3f}"],
         ["fresh table per decrypt", f"{sw_uncached.elapsed:.3f}"],
         ["speedup", f"{speedup:.1f}x"]]))
    assert sw_uncached.elapsed > sw_cached.elapsed
