"""Measurement harnesses shared by the figure benches.

Each function reproduces the measurement loop behind one family of
figures: element-wise ops (Figures 3 and 4), dot products (Figure 5) and
the twin-training comparison (Figure 6 / Table III).

:func:`write_bench_json` is the machine-readable twin of the text
reports in ``benchmarks/conftest.write_report``: ablation benches dump
their raw numbers and speedup ratios to
``benchmarks/results/BENCH_<name>.json`` so the perf trajectory is
diffable across PRs without parsing formatted tables.
"""

from __future__ import annotations

import json
import pathlib
import random
from dataclasses import dataclass, field

import numpy as np

from repro.matrix.parallel import (
    secure_dot_parallel,
    secure_elementwise_parallel,
)
from repro.matrix.secure_matrix import (
    SecureMatrixScheme,
    matrix_bound_dot,
    matrix_bound_elementwise,
)
from repro.mathutils.dlog import SolverCache
from repro.mathutils.group import GroupParams
from repro.utils.timer import Stopwatch

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def summarize_trace(path) -> dict[str, dict[str, float]]:
    """Fold a ``--trace-file`` JSONL span dump into per-phase totals.

    Each line is one completed span (``repro.obs.tracing``); the
    summary maps phase name to ``{"count": n, "total_s": seconds}``.
    Malformed lines are skipped so a truncated trace (process killed
    mid-write) still summarizes.
    """
    totals: dict[str, dict[str, float]] = {}
    for line in pathlib.Path(path).read_text().splitlines():
        try:
            record = json.loads(line)
            name, dur = record["name"], float(record["dur_s"])
        except (ValueError, KeyError, TypeError):
            continue
        slot = totals.setdefault(name, {"count": 0, "total_s": 0.0})
        slot["count"] += 1
        slot["total_s"] += dur
    return totals


def write_bench_json(name: str, numbers: dict, *,
                     speedups: dict | None = None,
                     meta: dict | None = None,
                     trace: dict | None = None) -> pathlib.Path:
    """Persist one bench's results as ``results/BENCH_<name>.json``.

    ``numbers`` holds raw measurements (seconds, counts, bytes),
    ``speedups`` holds derived ratios, ``meta`` holds the configuration
    (group bits, sizes) needed to compare runs fairly.  Keys are flat
    strings so downstream tooling can diff two PRs with ``jq``.

    ``trace`` takes :func:`summarize_trace` output (or a live
    ``SpanTracer.phase_totals()``) and folds each phase into
    ``numbers`` as ``phase_<name>_s`` / ``phase_<name>_count``, so the
    paper's cost decomposition rides in the same diffable file.
    """
    numbers = dict(numbers)
    for phase, slot in (trace or {}).items():
        key = phase.replace("-", "_")
        numbers[f"phase_{key}_s"] = float(slot["total_s"])
        numbers[f"phase_{key}_count"] = int(slot["count"])
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "bench": name,
        "meta": meta or {},
        "numbers": {k: round(v, 6) if isinstance(v, float) else v
                    for k, v in numbers.items()},
        "speedups": {k: round(float(v), 3)
                     for k, v in (speedups or {}).items()},
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@dataclass
class ElementwisePoint:
    """One measured point of a Figure 3/4 sweep."""

    value_range: tuple[int, int]
    count: int
    encrypt_s: float
    key_derive_s: float
    secure_s: float
    parallel_s: float


def measure_elementwise(params: GroupParams, op: str, count: int,
                        value_range: tuple[int, int],
                        seed: int = 0, workers: int | None = None,
                        ) -> ElementwisePoint:
    """Measure the four panels of Figure 3 (op='+') / Figure 4 (op='*')."""
    rng = random.Random(seed)
    cache = SolverCache()
    scheme = SecureMatrixScheme(params, rng=rng, solver_cache=cache)
    _, msk_bo = scheme.setup(column_length=1)
    lo, hi = value_range
    x = np.array([[rng.randrange(lo, hi + 1) for _ in range(count)]],
                 dtype=object)
    y = np.array([[rng.randrange(lo, hi + 1) for _ in range(count)]],
                 dtype=object)

    with Stopwatch() as sw_enc:
        enc = scheme.pre_process_encryption(x, with_feip=False)
    with Stopwatch() as sw_key:
        keys = scheme.derive_elementwise_keys(msk_bo, op, y, enc.commitments())
    bound_mag = max(abs(lo), abs(hi))
    bound = matrix_bound_elementwise(op, bound_mag, bound_mag)
    with Stopwatch() as sw_serial:
        z = scheme.secure_elementwise(enc, keys, bound)
    with Stopwatch() as sw_parallel:
        zp = secure_elementwise_parallel(params, scheme.febo_mpk, enc, keys,
                                         bound, workers=workers)
    assert (z == zp).all(), "parallel result diverged from serial"
    return ElementwisePoint(value_range, count, sw_enc.elapsed,
                            sw_key.elapsed, sw_serial.elapsed,
                            sw_parallel.elapsed)


@dataclass
class DotPoint:
    """One measured point of a Figure 5 sweep."""

    vector_length: int
    value_range: tuple[int, int]
    count: int
    encrypt_s: float
    key_derive_s: float
    secure_s: float
    parallel_s: float


def measure_dot(params: GroupParams, vector_length: int, count: int,
                value_range: tuple[int, int], seed: int = 0,
                workers: int | None = None) -> DotPoint:
    """Measure the four panels of Figure 5 for ``count`` inner products."""
    rng = random.Random(seed)
    cache = SolverCache()
    scheme = SecureMatrixScheme(params, rng=rng, solver_cache=cache)
    msk_ip, _ = scheme.setup(column_length=vector_length)
    lo, hi = value_range
    x = np.array(
        [[rng.randrange(lo, hi + 1) for _ in range(count)]
         for _ in range(vector_length)], dtype=object)
    y = np.array([[rng.randrange(lo, hi + 1) for _ in range(vector_length)]],
                 dtype=object)

    with Stopwatch() as sw_enc:
        enc = scheme.pre_process_encryption(x, with_febo=False)
    with Stopwatch() as sw_key:
        keys = scheme.derive_dot_keys(msk_ip, y)
    bound = matrix_bound_dot(max(abs(lo), abs(hi)), max(abs(lo), abs(hi)),
                             vector_length)
    with Stopwatch() as sw_serial:
        z = scheme.secure_dot(enc, keys, bound)
    with Stopwatch() as sw_parallel:
        zp = secure_dot_parallel(params, scheme.feip_mpk, enc, keys, bound,
                                 workers=workers)
    assert (z == zp).all(), "parallel result diverged from serial"
    return DotPoint(vector_length, value_range, count, sw_enc.elapsed,
                    sw_key.elapsed, sw_serial.elapsed, sw_parallel.elapsed)


@dataclass
class TrainingComparison:
    """Everything Figure 6 and Table III report, for both pipelines."""

    batch_size: int
    epochs: int
    window: int
    plain_batch_accuracy: list[float] = field(default_factory=list)
    crypto_batch_accuracy: list[float] = field(default_factory=list)
    plain_epoch_test_accuracy: list[float] = field(default_factory=list)
    crypto_epoch_test_accuracy: list[float] = field(default_factory=list)
    plain_train_s: float = 0.0
    crypto_train_s: float = 0.0
    encrypt_s: float = 0.0

    def averaged(self, series: list[float]) -> list[float]:
        return [
            float(np.mean(series[i:i + self.window]))
            for i in range(0, len(series), self.window)
        ]


def run_training_comparison(n_train: int = 600, n_test: int = 200,
                            canvas: int = 8, batch_size: int = 25,
                            epochs: int = 2, window: int = 4,
                            seed: int = 0) -> TrainingComparison:
    """Train a plain LeNet-style CNN and its CryptoCNN twin.

    Both models share initial weights and batch order, so any divergence
    is attributable to the fixed-point / crypto path -- the comparison
    behind Figure 6 and Table III.
    """
    # imports here keep the module importable without the heavier deps
    from repro.core.config import CryptoNNConfig
    from repro.core.cryptocnn import CryptoCNNTrainer
    from repro.core.entities import Client, TrustedAuthority
    from repro.data.preprocess import one_hot
    from repro.data.synth_digits import load_synth_digits
    from repro.nn.lenet import build_lenet_small
    from repro.nn.losses import SoftmaxCrossEntropyLoss
    from repro.nn.optimizers import SGD

    train, test = load_synth_digits(n_train=n_train, n_test=n_test,
                                    canvas=canvas, seed=seed)
    result = TrainingComparison(batch_size=batch_size, epochs=epochs,
                                window=window)

    weights_rng = np.random.default_rng(seed)
    plain_model = build_lenet_small(weights_rng, image_size=canvas)
    crypto_model = build_lenet_small(np.random.default_rng(seed + 1),
                                     image_size=canvas)
    crypto_model.set_weights(plain_model.get_weights())

    # --- plaintext pipeline -------------------------------------------------
    with Stopwatch() as sw_plain:
        plain_hist_all = []
        for _ in range(epochs):
            hist = plain_model.fit(
                train.x, one_hot(train.y, 10), SoftmaxCrossEntropyLoss(),
                SGD(0.5), epochs=1, batch_size=batch_size,
                rng=np.random.default_rng(seed + 2), shuffle=True,
            )
            plain_hist_all.extend(hist.batch_accuracy)
            result.plain_epoch_test_accuracy.append(
                plain_model.evaluate(test.x, one_hot(test.y, 10))
            )
    result.plain_batch_accuracy = plain_hist_all
    result.plain_train_s = sw_plain.elapsed

    # --- encrypted pipeline ---------------------------------------------------
    authority = TrustedAuthority(CryptoNNConfig(), rng=random.Random(seed))
    client = Client(authority)
    with Stopwatch() as sw_enc:
        enc_train = client.encrypt_images(train.x, train.y, num_classes=10,
                                          filter_size=3, stride=1, padding=1)
        enc_test = client.encrypt_images(test.x, test.y, num_classes=10,
                                         filter_size=3, stride=1, padding=1)
    result.encrypt_s = sw_enc.elapsed

    trainer = CryptoCNNTrainer(crypto_model, authority)
    with Stopwatch() as sw_crypto:
        crypto_hist_all = []
        for _ in range(epochs):
            hist = trainer.fit(enc_train, SGD(0.5), epochs=1,
                               batch_size=batch_size,
                               rng=np.random.default_rng(seed + 2),
                               shuffle=True)
            crypto_hist_all.extend(hist.batch_accuracy)
            result.crypto_epoch_test_accuracy.append(trainer.evaluate(enc_test))
    result.crypto_batch_accuracy = crypto_hist_all
    result.crypto_train_s = sw_crypto.elapsed
    return result
