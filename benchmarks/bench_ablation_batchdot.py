"""Ablation: batched decryption of the secure dot-product matrix.

PR 1 made a *single* FEIP decryption fast (multiexp numerator, comb
tables, dense-table dlog) but still decrypted the output matrix row by
row: for every encrypted column, each of the m weight keys re-walked its
own exponentiation and discrete-log machinery even though all m rows
share the exact same ciphertext bases ``(ct_0, ct_1..ct_eta)``.  The
batched engine amortizes everything shareable across the batch
dimension:

* :class:`~repro.mathutils.fastexp.SharedBaseMultiExp` builds the
  per-base odd-power window tables once per column and evaluates all m
  signed exponent rows against them;
* the ``ct_0^{-sk}`` half -- the single most expensive per-row term, a
  full-width exponentiation -- goes through a per-column fixed-base comb
  sized for the batch (:func:`~repro.mathutils.fastexp
  .amortized_comb_window`);
* :meth:`~repro.mathutils.dlog.DlogSolver.solve_many` dedups the m
  targets and shares one giant-step walk.

The acceptance gate asserts the combined effect: >= 2x wall clock on an
m x eta secure dot at the paper's 256-bit parameter versus the PR 1
per-row path (which stays available as ``Feip.decrypt``, the reference
implementation both pipelines are checked against).
"""

from __future__ import annotations

import random

from benchmarks.conftest import series_table, write_report
from benchmarks.harness import write_bench_json
from repro.fe.feip import Feip
from repro.mathutils.dlog import DlogSolver
from repro.utils.timer import Stopwatch
from repro.mathutils.group import GroupParams

#: The paper's security parameter; the acceptance criterion is stated at
#: this size, so this bench does not follow the scaled BENCH_BITS.
BITS = 256

#: Output rows of the decryption matrix -- the hidden width of a
#: Figure-6-style MLP first layer (one FEIP key per unit).
M_ROWS = 64

VECTOR_LENGTH = 10
VALUE_RANGE = (1, 100)
N_COLUMNS = 6
ROUNDS = 3
GATE = 2.0


def test_batched_vs_per_row_secure_dot(benchmark):
    """m x eta decryption matrix: per-row PR 1 path vs decrypt_rows."""
    params = GroupParams.predefined(BITS)
    lo, hi = VALUE_RANGE
    rng = random.Random(11)
    feip = Feip(params, rng=random.Random(12))
    mpk, msk = feip.setup(VECTOR_LENGTH)
    columns = [[rng.randrange(lo, hi + 1) for _ in range(VECTOR_LENGTH)]
               for _ in range(N_COLUMNS)]
    weights = [[rng.randrange(lo, hi + 1) for _ in range(VECTOR_LENGTH)]
               for _ in range(M_ROWS)]
    keys = [feip.key_derive(msk, y) for y in weights]
    cts = [feip.encrypt(mpk, col) for col in columns]
    bound = VECTOR_LENGTH * hi * hi + 1
    expected = [[sum(a * b for a, b in zip(col, y)) for col in columns]
                for y in weights]

    solver = feip.solver_for(bound)

    def per_row_pipeline():
        # PR 1: one independent decrypt per (row, column) cell
        return [[feip.decrypt(mpk, ct, key, bound, solver=solver)
                 for ct in cts]
                for key in keys]

    def batched_pipeline():
        z = [feip.decrypt_rows(mpk, ct, keys, bound, solver=solver)
             for ct in cts]
        return [[z[j][i] for j in range(len(cts))]
                for i in range(len(keys))]

    # warm shared state (solver tables, comb tables for g) for BOTH sides
    assert per_row_pipeline() == expected
    assert batched_pipeline() == expected

    with Stopwatch() as sw_per_row:
        for _ in range(ROUNDS):
            per_row_pipeline()
    with Stopwatch() as sw_batched:
        for _ in range(ROUNDS):
            batched_pipeline()
    benchmark.pedantic(batched_pipeline, rounds=1, iterations=1)

    speedup = sw_per_row.elapsed / max(sw_batched.elapsed, 1e-9)
    write_report("ablation_batchdot", series_table(
        ["pipeline",
         f"time for {ROUNDS} x ({M_ROWS}x{VECTOR_LENGTH} @ "
         f"{VECTOR_LENGTH}x{N_COLUMNS}) secure dots, {BITS}-bit (s)"],
        [["per-row (PR 1: decrypt per cell)", f"{sw_per_row.elapsed:.3f}"],
         ["batched (decrypt_rows per column)", f"{sw_batched.elapsed:.3f}"],
         ["speedup", f"{speedup:.2f}x"]]))
    write_bench_json(
        "ablation_batchdot",
        {"per_row_s": sw_per_row.elapsed, "batched_s": sw_batched.elapsed},
        speedups={"batched_vs_per_row": speedup},
        meta={"bits": BITS, "rounds": ROUNDS, "m_rows": M_ROWS,
              "vector_length": VECTOR_LENGTH, "columns": N_COLUMNS,
              "gate": GATE})
    assert speedup >= GATE, f"expected >= {GATE}x, measured {speedup:.2f}x"


def test_solve_many_shares_the_stride_walk():
    """Micro: batched dlog vs per-element under a sparse baby table.

    Training-sized bounds ride the dense-table fast path (O(1) per
    query, nothing to batch); this pins the sparse-table regime where
    the batch shares one deduplicated giant-step walk.  Informational --
    the end-to-end gate lives in the test above.
    """
    params = GroupParams.predefined(64)
    from repro.mathutils.group import SchnorrGroup

    group = SchnorrGroup(params)
    bound = 200_000
    solver = DlogSolver(group, bound, table_size=512)
    rng = random.Random(13)
    values = [rng.randrange(-bound, bound + 1) for _ in range(96)]
    values += values[:32]  # duplicates: the dedup path
    targets = [group.gexp(v) for v in values]

    assert solver.solve_many(targets) == values  # warm + correct
    with Stopwatch() as sw_each:
        each = [solver.solve(h) for h in targets]
    with Stopwatch() as sw_many:
        many = solver.solve_many(targets)
    assert each == many == values

    speedup = sw_each.elapsed / max(sw_many.elapsed, 1e-9)
    write_report("ablation_batchdot_solvemany", series_table(
        ["method", f"time for {len(targets)} dlogs, bound={bound}, "
                   f"table=512 (s)"],
        [["solve per element", f"{sw_each.elapsed:.4f}"],
         ["solve_many", f"{sw_many.elapsed:.4f}"],
         ["speedup", f"{speedup:.2f}x"]]))
    write_bench_json(
        "ablation_batchdot_solvemany",
        {"solve_each_s": sw_each.elapsed, "solve_many_s": sw_many.elapsed},
        speedups={"solve_many_vs_each": speedup},
        meta={"bits": 64, "bound": bound, "table_size": 512,
              "targets": len(targets)})
