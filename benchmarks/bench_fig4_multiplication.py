"""Figure 4: time cost of element-wise MULTIPLICATION.

Same four panels as Figure 3 with delta = '*'.  The paper's serial
multiplication is dramatically slower than addition (minutes vs seconds)
because the result magnitude -- and hence the discrete-log search window
-- grows with the product of the operand ranges; the sweep should
reproduce that multiplication/addition gap.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    ELEMENTWISE_COUNTS,
    VALUE_RANGES,
    random_int_matrix,
    series_table,
    write_report,
)
from benchmarks.harness import measure_elementwise
from repro.matrix.secure_matrix import SecureMatrixScheme, matrix_bound_elementwise
from repro.mathutils.dlog import SolverCache


@pytest.fixture()
def scheme(bench_params, bench_rng):
    return SecureMatrixScheme(bench_params, rng=bench_rng,
                              solver_cache=SolverCache())


def test_secure_multiplication_row(benchmark, scheme, bench_rng):
    """Unit op: 100 secure multiplications (serial)."""
    _, msk_bo = scheme.setup(column_length=1)
    x = random_int_matrix(bench_rng, 1, 100, (-100, 100))
    y = random_int_matrix(bench_rng, 1, 100, (-100, 100))
    enc = scheme.pre_process_encryption(x, with_feip=False)
    keys = scheme.derive_elementwise_keys(msk_bo, "*", y, enc.commitments())
    bound = matrix_bound_elementwise("*", 100, 100)
    benchmark(lambda: scheme.secure_elementwise(enc, keys, bound))


def test_fig4_series(benchmark, bench_params):
    """Full Figure 4 sweep; writes benchmarks/results/fig4_multiplication.txt."""

    def sweep():
        points = []
        for value_range in VALUE_RANGES:
            for count in ELEMENTWISE_COUNTS:
                points.append(
                    measure_elementwise(bench_params, "*", count, value_range)
                )
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [str(p.value_range), str(p.count), f"{p.encrypt_s * 1e3:.1f}",
         f"{p.key_derive_s * 1e3:.1f}", f"{p.secure_s:.3f}",
         f"{p.parallel_s:.3f}"]
        for p in points
    ]
    write_report("fig4_multiplication", series_table(
        ["range", "#mul", "enc (ms)", "keyder (ms)", "secure (s)",
         "parallel (s)"], rows))

    # paper shape: larger value ranges cost more (bigger dlog window);
    # the [-1000,1000] series must dominate the [-10,10] one
    biggest_count = ELEMENTWISE_COUNTS[-1]
    small_range = next(p for p in points
                       if p.count == biggest_count and p.value_range == (-10, 10))
    large_range = next(p for p in points
                       if p.count == biggest_count
                       and p.value_range == (-1000, 1000))
    assert large_range.secure_s > small_range.secure_s
