"""Communication overhead of key generation (paper Section IV-B2).

The paper gives a closed form: training a two-class NN with k first-layer
units on X (m samples, n features) sends k x n x |w| bytes to the
authority and receives k x |sk| bytes per iteration.  This bench measures
the actual protocol traffic for one iteration and checks it against the
formula (plus the documented per-sample loss-key term the formula
elides).
"""

from __future__ import annotations

import random

import numpy as np

from benchmarks.conftest import series_table, write_report
from repro.core import protocol
from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.core.serialization import exponent_size_bytes
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD


def run_one_iteration(k: int, n: int, m: int):
    config = CryptoNNConfig()
    authority = TrustedAuthority(config, rng=random.Random(0))
    client = Client(authority)
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(m, n))
    y = rng.integers(0, 2, size=m)
    enc = client.encrypt_tabular(x, y, num_classes=2)
    model = Sequential([Dense(n, k, rng=rng), ReLU(), Dense(k, 2, rng=rng)])
    trainer = CryptoNNTrainer(model, authority)
    authority.traffic.clear()
    trainer.fit(enc, SGD(0.1), epochs=1, batch_size=m, max_batches=1,
                rng=np.random.default_rng(1))
    return authority


def test_communication_matches_formula(benchmark):
    k, n, m = 8, 6, 30
    authority = benchmark.pedantic(run_one_iteration, args=(k, n, m),
                                   rounds=1, iterations=1)
    w = authority.config.key_weight_bytes
    upload = authority.traffic.total_bytes(
        sender=protocol.SERVER, kind=protocol.KIND_FEIP_KEY_REQUEST)
    download = authority.traffic.total_bytes(
        sender=protocol.AUTHORITY, kind=protocol.KIND_FEIP_KEY_RESPONSE)
    sk_bytes = exponent_size_bytes(authority.params)

    formula_upload = k * n * w                       # paper: k x n x |w|
    loss_upload = m * 2 * w                          # per-sample log-p keys
    formula_download = k * (sk_bytes + n * w)        # paper: k x |sk|
    loss_download = m * (sk_bytes + 2 * w)

    rows = [
        ["upload (measured)", str(upload)],
        ["  = k*n*|w| (paper formula)", str(formula_upload)],
        ["  + per-sample loss keys", str(loss_upload)],
        ["download (measured)", str(download)],
        ["  = k*|sk| + bound vectors", str(formula_download)],
        ["  + per-sample loss keys", str(loss_download)],
        ["febo key traffic (bytes)",
         str(authority.traffic.total_bytes(kind=protocol.KIND_FEBO_KEY_REQUEST)
             + authority.traffic.total_bytes(kind=protocol.KIND_FEBO_KEY_RESPONSE))],
    ]
    write_report("communication_overhead",
                 series_table(["quantity", "bytes/iteration"], rows))

    assert upload == formula_upload + loss_upload
    assert download == formula_download + loss_download
