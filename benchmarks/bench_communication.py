"""Communication overhead of key generation (paper Section IV-B2).

The paper gives a closed form: training a two-class NN with k first-layer
units on X (m samples, n features) sends k x n x |w| bytes to the
authority and receives k x |sk| bytes per iteration.  This bench measures
the actual protocol traffic for one iteration and checks it against the
formula (plus the documented per-sample loss-key term the formula
elides).
"""

from __future__ import annotations

import random

import numpy as np

from benchmarks.conftest import series_table, write_report
from repro.core import protocol
from repro.core.config import CryptoNNConfig
from repro.core.cryptonn import CryptoNNTrainer
from repro.core.entities import Client, TrustedAuthority
from repro.core.serialization import exponent_size_bytes
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD


def run_one_iteration(k: int, n: int, m: int,
                      batch_key_requests: bool = False):
    config = CryptoNNConfig(batch_key_requests=batch_key_requests)
    authority = TrustedAuthority(config, rng=random.Random(0))
    client = Client(authority)
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(m, n))
    y = rng.integers(0, 2, size=m)
    enc = client.encrypt_tabular(x, y, num_classes=2)
    model = Sequential([Dense(n, k, rng=rng), ReLU(), Dense(k, 2, rng=rng)])
    trainer = CryptoNNTrainer(model, authority, config=config)
    authority.traffic.clear()
    trainer.fit(enc, SGD(0.1), epochs=1, batch_size=m, max_batches=1,
                rng=np.random.default_rng(1))
    return authority


def test_communication_matches_formula(benchmark):
    k, n, m = 8, 6, 30
    authority = benchmark.pedantic(run_one_iteration, args=(k, n, m),
                                   rounds=1, iterations=1)
    w = authority.config.key_weight_bytes
    upload = authority.traffic.total_bytes(
        sender=protocol.SERVER, kind=protocol.KIND_FEIP_KEY_REQUEST)
    download = authority.traffic.total_bytes(
        sender=protocol.AUTHORITY, kind=protocol.KIND_FEIP_KEY_RESPONSE)
    sk_bytes = exponent_size_bytes(authority.params)

    formula_upload = k * n * w                       # paper: k x n x |w|
    loss_upload = m * 2 * w                          # per-sample log-p keys
    formula_download = k * (sk_bytes + n * w)        # paper: k x |sk|
    loss_download = m * (sk_bytes + 2 * w)

    rows = [
        ["upload (measured)", str(upload)],
        ["  = k*n*|w| (paper formula)", str(formula_upload)],
        ["  + per-sample loss keys", str(loss_upload)],
        ["download (measured)", str(download)],
        ["  = k*|sk| + bound vectors", str(formula_download)],
        ["  + per-sample loss keys", str(loss_download)],
        ["febo key traffic (bytes)",
         str(authority.traffic.total_bytes(kind=protocol.KIND_FEBO_KEY_REQUEST)
             + authority.traffic.total_bytes(kind=protocol.KIND_FEBO_KEY_RESPONSE))],
    ]
    write_report("communication_overhead",
                 series_table(["quantity", "bytes/iteration"], rows))

    assert upload == formula_upload + loss_upload
    assert download == formula_download + loss_download


def test_communication_batched_vs_unbatched(benchmark):
    """Key-request batching: same payload, collapsed message count.

    The unbatched path sends ``1 + m`` FEIP request messages per
    iteration (one for the first-layer rows, one per sample for the
    loss keys); batching coalesces them into 2 framed envelopes at the
    cost of one 8-byte envelope header each -- the shape the networked
    runtime (repro.rpc) puts on the wire.
    """
    from repro.core.serialization import BATCH_HEADER_BYTES

    k, n, m = 8, 6, 30
    unbatched = run_one_iteration(k, n, m, batch_key_requests=False)
    batched = benchmark.pedantic(run_one_iteration, args=(k, n, m, True),
                                 rounds=1, iterations=1)

    plain_up = unbatched.traffic.total_bytes(
        sender=protocol.SERVER, kind=protocol.KIND_FEIP_KEY_REQUEST)
    plain_msgs = unbatched.traffic.message_count(
        protocol.KIND_FEIP_KEY_REQUEST)
    batch_up = batched.traffic.total_bytes(
        sender=protocol.SERVER, kind=protocol.KIND_FEIP_KEY_BATCH_REQUEST)
    batch_msgs = batched.traffic.message_count(
        protocol.KIND_FEIP_KEY_BATCH_REQUEST)
    febo_plain_msgs = unbatched.traffic.message_count(
        protocol.KIND_FEBO_KEY_REQUEST)
    febo_batch_msgs = batched.traffic.message_count(
        protocol.KIND_FEBO_KEY_BATCH_REQUEST)

    rows = [
        ["feip request messages (unbatched)", str(plain_msgs)],
        ["feip request messages (batched)", str(batch_msgs)],
        ["feip upload bytes (unbatched = paper formula)", str(plain_up)],
        ["feip upload bytes (batched = formula + headers)", str(batch_up)],
        ["febo request messages (unbatched)", str(febo_plain_msgs)],
        ["febo request messages (batched)", str(febo_batch_msgs)],
    ]
    write_report("communication_batched_vs_unbatched",
                 series_table(["quantity", "per iteration"], rows))

    # paper formula payload is untouched; only envelope headers are added
    assert plain_up == k * n * w_bytes(unbatched) + m * 2 * w_bytes(unbatched)
    assert batch_up == plain_up + batch_msgs * BATCH_HEADER_BYTES
    # the request fan-out collapses from 1 + m messages to 2 envelopes
    assert plain_msgs == 1 + m
    assert batch_msgs == 2


def w_bytes(authority) -> int:
    return authority.config.key_weight_bytes
